"""Conventional backups: full and incremental (Section 5).

The cloud version of SAP IQ keeps supporting conventional backups next to
snapshots.  A *full* backup copies the catalog plus every reachable page
to a backup bucket; an *incremental* backup copies only pages written
since its base — which, thanks to monotonic key allocation, is exactly
the reachable set of keys above the base's high-water mark.

Restore resolves the incremental chain back to its full base, re-installs
the catalog, and copies any missing objects back onto their dbspaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.objectstore.base import ObjectStore
from repro.storage.blockmap import Blockmap
from repro.storage.dbspace import CloudDbspace
from repro.storage.identity import Catalog
from repro.storage.locator import NULL_LOCATOR, is_object_key


class BackupError(Exception):
    """Unknown backups, broken chains, missing dbspaces."""


@dataclass(frozen=True)
class BackupRecord:
    """Metadata of one backup in the chain."""

    backup_id: int
    kind: str  # "full" or "incremental"
    created_at: float
    catalog_bytes: bytes
    # (dbspace, object name) for each object captured by THIS backup.
    objects: "Tuple[Tuple[str, str], ...]"
    # Key consumption high-water mark at capture time: incremental backups
    # copy reachable keys above it, restores GC orphans above it.
    max_allocated_key: int
    base_backup_id: "Optional[int]" = None


class BackupManager:
    """Runs backups of a Database into a backup object store."""

    def __init__(self, db, backup_store: ObjectStore) -> None:
        self.db = db
        self.backup_store = backup_store
        self._records: Dict[int, BackupRecord] = {}
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # capture
    # ------------------------------------------------------------------ #

    def _reachable_objects(
        self, min_key_exclusive: int = 0
    ) -> "List[Tuple[str, str]]":
        """(dbspace, object name) of every reachable cloud page above
        ``min_key_exclusive`` (0 = everything)."""
        out: "List[Tuple[str, str]]" = []
        seen: "set[int]" = set()
        for identity in self.db.catalog.all_identities():
            try:
                store = self.db.node.dbspace(identity.dbspace)
            except KeyError:
                continue
            if not isinstance(store, CloudDbspace):
                continue
            if identity.root_locator == NULL_LOCATOR:
                continue
            blockmap = Blockmap(store, root_locator=identity.root_locator,
                                height=identity.height)
            for locator in blockmap.live_locators():
                if not is_object_key(locator) or locator in seen:
                    continue
                seen.add(locator)
                if locator > min_key_exclusive:
                    out.append((identity.dbspace, store.object_name(locator)))
        return out

    def _copy_to_backup(self, backup_id: int,
                        objects: "List[Tuple[str, str]]") -> None:
        for dbspace_name, object_name in objects:
            store = self.db.node.dbspace(dbspace_name)
            payload = store.io.get(object_name)  # opaque: ciphertext stays sealed
            self.backup_store.put(
                f"{backup_id}/{dbspace_name}/{object_name}", payload
            )

    def _consumed_mark(self) -> int:
        """Current key consumption high-water mark (see BackupRecord)."""
        consumed = getattr(self.db.key_cache, "last_consumed", None)
        return consumed if consumed is not None else (
            self.db.keygen.max_allocated_key
        )

    def full_backup(self) -> BackupRecord:
        """Copy the catalog and every reachable page to the backup store."""
        objects = self._reachable_objects()
        backup_id = self._next_id
        self._next_id += 1
        self._copy_to_backup(backup_id, objects)
        record = BackupRecord(
            backup_id=backup_id,
            kind="full",
            created_at=self.db.clock.now(),
            catalog_bytes=self.db.catalog.to_bytes(),
            objects=tuple(objects),
            max_allocated_key=self._consumed_mark(),
        )
        self._records[backup_id] = record
        return record

    def incremental_backup(self, base: BackupRecord) -> BackupRecord:
        """Copy only pages written since ``base`` (keys above its mark)."""
        if base.backup_id not in self._records:
            raise BackupError(f"unknown base backup {base.backup_id}")
        objects = self._reachable_objects(
            min_key_exclusive=base.max_allocated_key
        )
        backup_id = self._next_id
        self._next_id += 1
        self._copy_to_backup(backup_id, objects)
        record = BackupRecord(
            backup_id=backup_id,
            kind="incremental",
            created_at=self.db.clock.now(),
            catalog_bytes=self.db.catalog.to_bytes(),
            objects=tuple(objects),
            max_allocated_key=self._consumed_mark(),
            base_backup_id=base.backup_id,
        )
        self._records[backup_id] = record
        return record

    def record(self, backup_id: int) -> BackupRecord:
        try:
            return self._records[backup_id]
        except KeyError:
            raise BackupError(f"no backup with id {backup_id}") from None

    def chain(self, backup_id: int) -> "List[BackupRecord]":
        """The restore chain, oldest (the full base) first."""
        out: List[BackupRecord] = []
        current: "Optional[int]" = backup_id
        while current is not None:
            record = self.record(current)
            out.append(record)
            current = record.base_backup_id
        out.reverse()
        if out[0].kind != "full":
            raise BackupError(
                f"backup chain of {backup_id} does not end in a full backup"
            )
        return out

    # ------------------------------------------------------------------ #
    # restore
    # ------------------------------------------------------------------ #

    def restore(self, backup_id: int) -> int:
        """Restore the database to the backup; returns objects copied back.

        Re-installs the backup's catalog, replays the chain to put every
        captured object back on its dbspace (skipping ones still present),
        and resets the engine's transactional state.
        """
        records = self.chain(backup_id)
        target = records[-1]
        db = self.db
        for txn in db.txn_manager.active_transactions():
            db.txn_manager.rollback(txn)

        copied = 0
        for record in records:
            for dbspace_name, object_name in record.objects:
                try:
                    store = db.node.dbspace(dbspace_name)
                except KeyError:
                    raise BackupError(
                        f"dbspace {dbspace_name!r} from the backup does not "
                        "exist; recreate it before restoring"
                    ) from None
                if store.io.exists(object_name):
                    continue
                payload = self.backup_store.get(
                    f"{record.backup_id}/{dbspace_name}/{object_name}"
                )
                # Administrative re-creation bypasses the client's
                # never-write-twice ledger: the key is globally unique and
                # its one legitimate value is being reinstated.
                store.io.client.store.put(object_name, payload)  # type: ignore[attr-defined]
                copied += 1

        db.catalog = Catalog.from_bytes(target.catalog_bytes)
        db.txn_manager.catalog = db.catalog
        db.txn_manager.restore_chain([])
        # Objects written after the backup are unreferenced now; poll them
        # for GC (keys above the backup's mark, minus anything reachable).
        current_max = db.keygen.max_allocated_key
        keep = db._reachable_cloud_keys()
        for key in range(target.max_allocated_key + 1, current_max + 1):
            if key in keep:
                continue
            for store in db.cloud_dbspaces().values():
                store.poll_and_free(key)
        db.node.invalidate_caches()
        if hasattr(db, "_query_meta_cache"):
            db._query_meta_cache.clear()
        db.checkpoint()
        return copied
