"""Transaction log and checkpoints.

SAP IQ's transaction log stores *metadata only* — data pages are flushed to
permanent storage before commit, so the log records commit/rollback events,
key-range allocations and the identities of the RF/RB bitmaps.  The log
lives in the system dbspace on strongly consistent storage.

Checkpoints snapshot the recovery-relevant state (catalog, freelists,
key-generator state); recovery loads the last checkpoint and replays the
records that follow it (see :mod:`repro.core.recovery`).

Log records embed their payloads (including the RF/RB bitmap bytes) rather
than pointing at separately flushed bitmap pages; at simulation scale the
two are equivalent for recovery behaviour, and the embedded form keeps the
replay logic auditable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.blockstore.device import BlockDevice

# Record kinds.
ALLOC_RANGE = "alloc_range"
TXN_COMMIT = "txn_commit"
TXN_ROLLBACK = "txn_rollback"
CHECKPOINT = "checkpoint"
SNAPSHOT_CREATED = "snapshot_created"
DROP_VERSION = "drop_version"
GC_COLLECT = "gc_collect"
OBJECT_CREATED = "object_created"

_RECORD_SIZE_ESTIMATE = 512  # bytes charged per record to the log device


@dataclass(frozen=True)
class LogRecord:
    """One transaction log entry."""

    lsn: int
    kind: str
    payload: "Dict[str, Any]" = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"lsn": self.lsn, "kind": self.kind, "payload": self.payload},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        data = json.loads(line)
        return cls(lsn=data["lsn"], kind=data["kind"], payload=data["payload"])


class TransactionLog:
    """Append-only metadata log with checkpoint support.

    If a ``device`` is provided, each append charges a small synchronous
    write to it (the log lives on the system dbspace volume); otherwise
    appends are free in virtual time.
    """

    def __init__(self, device: "Optional[BlockDevice]" = None) -> None:
        self._records: List[LogRecord] = []
        self._device = device
        self._next_lsn = 1
        self._last_checkpoint_lsn = 0
        self._checkpoint_payloads: Dict[int, Dict[str, Any]] = {}

    def _charge_write(self, nbytes: int) -> None:
        if self._device is not None:
            # The log is a rotating region of the system dbspace; only the
            # write's cost matters here, the contents live in the records.
            self._device.charge_write(nbytes)

    def append(self, kind: str, payload: "Optional[Dict[str, Any]]" = None) -> LogRecord:
        record = LogRecord(self._next_lsn, kind, dict(payload or {}))
        self._next_lsn += 1
        self._records.append(record)
        self._charge_write(_RECORD_SIZE_ESTIMATE + len(record.to_json()))
        return record

    def checkpoint(self, state: "Dict[str, Any]") -> LogRecord:
        """Record a checkpoint; ``state`` must be JSON-serializable."""
        record = self.append(CHECKPOINT, {"note": "checkpoint"})
        self._last_checkpoint_lsn = record.lsn
        self._checkpoint_payloads[record.lsn] = state
        self._charge_write(len(json.dumps(state)))
        return record

    @property
    def last_checkpoint_lsn(self) -> int:
        return self._last_checkpoint_lsn

    def last_checkpoint_state(self) -> "Optional[Dict[str, Any]]":
        if self._last_checkpoint_lsn == 0:
            return None
        return self._checkpoint_payloads[self._last_checkpoint_lsn]

    def records_since_checkpoint(self) -> "Iterator[LogRecord]":
        """Records with LSN greater than the last checkpoint's."""
        for record in self._records:
            if record.lsn > self._last_checkpoint_lsn:
                yield record

    def records(self) -> "Iterator[LogRecord]":
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def truncate_before_checkpoint(self) -> int:
        """Drop records older than the last checkpoint; returns count dropped.

        Real systems recycle log space after a checkpoint; recovery only
        ever replays from the last checkpoint forward.
        """
        if self._last_checkpoint_lsn == 0:
            return 0
        keep = [r for r in self._records if r.lsn >= self._last_checkpoint_lsn]
        dropped = len(self._records) - len(keep)
        self._records = keep
        stale = [
            lsn for lsn in self._checkpoint_payloads
            if lsn < self._last_checkpoint_lsn
        ]
        for lsn in stale:
            del self._checkpoint_payloads[lsn]
        return dropped
