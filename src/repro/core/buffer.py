"""The buffer manager (Section 3.1).

Pages are born in the buffer cache, dirtied in RAM, and flushed to
permanent storage on eviction (cache pressure) or at commit.  For cloud
dbspaces a flush *always* consumes a fresh object key — never-write-twice —
while conventional dbspaces may update a page in place when the on-storage
image was written by the same transaction.

Each flush feeds the owning transaction's GC sink: freshly allocated
locators go to the RB bitmap, superseded committed locators go to the RF
bitmap, and locators superseded within the same transaction become
immediately reclaimable local garbage.

Frames are keyed by ``(object_id, page_no, tag)``: committed versions use
the version number as tag (shared by all readers of that version), writer
transactions use a per-transaction tag so MVCC versions coexist in cache.
Eviction is LRU by bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.sim.metrics import MetricsRegistry
from repro.sim.tracing import NULL_TRACER
from repro.storage.blockmap import Blockmap
from repro.storage.compression import PageCodec, codec_by_name
from repro.storage.dbspace import PageStore
from repro.storage.locator import NULL_LOCATOR
from repro.storage.page import PageConfig


class BufferError(Exception):
    """Buffer manager misuse (oversized pages, read-only writes...)."""


FrameTag = Union[int, Tuple[str, int]]  # version number or ("w", txn_id)


class ObjectHandle:
    """A transaction's view of one version of one storage object.

    Read handles wrap the committed blockmap of the snapshot version;
    write handles wrap a copy-on-write fork that accumulates this
    transaction's mappings.
    """

    def __init__(
        self,
        object_id: int,
        name: str,
        dbspace: PageStore,
        blockmap: Blockmap,
        version: int,
        page_count: int,
        writable: bool,
        txn: "Optional[object]" = None,
    ) -> None:
        self.object_id = object_id
        self.name = name
        self.dbspace = dbspace
        self.blockmap = blockmap
        self.version = version
        self.page_count = page_count
        self.writable = writable
        self.txn = txn
        # Set when this handle rewrites the object into another dbspace:
        # the base identity whose pages are superseded wholesale.
        self.rewritten_from: "Optional[object]" = None

    def frame_tag(self) -> FrameTag:
        if self.writable:
            assert self.txn is not None
            return ("w", self.txn.txn_id)  # type: ignore[attr-defined]
        return self.version

    def __repr__(self) -> str:
        mode = "rw" if self.writable else "ro"
        return f"ObjectHandle({self.name!r} v{self.version} {mode})"


@dataclass
class Frame:
    """One cached page."""

    data: bytes
    locator: int = NULL_LOCATOR
    dirty: bool = False
    fresh: bool = False  # on-storage image written by the owning txn
    handle: "Optional[ObjectHandle]" = None  # set while dirty (flush context)
    page_no: int = -1

    @property
    def size(self) -> int:
        return len(self.data)


class BufferManager:
    """RAM page cache with LRU eviction and dirty-page tracking."""

    def __init__(
        self,
        capacity_bytes: int,
        page_config: "Optional[PageConfig]" = None,
        codec: "Optional[PageCodec]" = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise BufferError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.page_config = page_config or PageConfig()
        self.codec = codec or codec_by_name(self.page_config.codec_name)
        self.metrics = MetricsRegistry()
        self.tracer = NULL_TRACER
        self._frames: "OrderedDict[Tuple[int, int, FrameTag], Frame]" = OrderedDict()
        self._used_bytes = 0
        # txn_id -> ordered set of dirty frame keys (flush order at commit)
        self._txn_dirty: "Dict[int, OrderedDict[Tuple[int, int, FrameTag], None]]" = {}

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def frame_count(self) -> int:
        return len(self._frames)

    def _touch(self, key: "Tuple[int, int, FrameTag]") -> None:
        self._frames.move_to_end(key)

    def _insert(self, key: "Tuple[int, int, FrameTag]", frame: Frame) -> None:
        existing = self._frames.pop(key, None)
        if existing is not None:
            self._used_bytes -= existing.size
        self._frames[key] = frame
        self._used_bytes += frame.size
        self._evict_if_needed()

    def _remove(self, key: "Tuple[int, int, FrameTag]") -> "Optional[Frame]":
        frame = self._frames.pop(key, None)
        if frame is not None:
            self._used_bytes -= frame.size
        return frame

    def _evict_if_needed(self) -> None:
        """Evict LRU frames until under capacity, batching dirty flushes.

        Dirty victims are flushed in parallel batches (write-back through
        the OCM on cloud dbspaces), modelling IQ's background sweeper.
        """
        if self._used_bytes <= self.capacity_bytes:
            return
        victims: List[Tuple[Tuple[int, int, FrameTag], Frame]] = []
        projected = self._used_bytes
        for key, frame in self._frames.items():
            if projected <= self.capacity_bytes or len(self._frames) - len(victims) <= 1:
                break
            victims.append((key, frame))
            projected -= frame.size
        dirty = [(key, frame) for key, frame in victims if frame.dirty]
        if dirty:
            self._flush_frames(dirty, commit_mode=False)
        for key, __ in victims:
            self._remove(key)
            self.metrics.counter("evictions").increment()

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #

    def _lookup_keys(self, handle: ObjectHandle, page_no: int):
        """Frame keys to probe, most-specific first."""
        keys = []
        if handle.writable:
            keys.append((handle.object_id, page_no, handle.frame_tag()))
        keys.append((handle.object_id, page_no, handle.version))
        return keys

    def get_page(self, handle: ObjectHandle, page_no: int) -> bytes:
        """Return the page's logical (decompressed) image."""
        for key in self._lookup_keys(handle, page_no):
            frame = self._frames.get(key)
            if frame is not None:
                self._touch(key)
                self.metrics.counter("hits").increment()
                return frame.data
        self.metrics.counter("misses").increment()
        # RAM hits take zero virtual time and are not traced; misses do
        # real I/O and get a span.
        with self.tracer.span("read_miss", "buffer",
                              object=handle.name, page_no=page_no):
            locator = handle.blockmap.lookup(page_no)
            if locator == NULL_LOCATOR:
                raise BufferError(
                    f"object {handle.name!r} v{handle.version} has no page "
                    f"{page_no}"
                )
            payload = handle.dbspace.read_page(locator)
            data = self.codec.decompress(payload)
            frame = Frame(data=data, locator=locator, dirty=False, fresh=False,
                          page_no=page_no)
            self._insert((handle.object_id, page_no, handle.version), frame)
            return data

    def _missing_pages(
        self, handle: ObjectHandle, page_nos: "Iterable[int]"
    ) -> "Tuple[List[int], List[int]]":
        """Pages not yet framed, with their locators (prefetch planning)."""
        missing: List[int] = []
        locators: List[int] = []
        for page_no in page_nos:
            if any(key in self._frames for key in self._lookup_keys(handle, page_no)):
                continue
            locator = handle.blockmap.lookup(page_no)
            if locator == NULL_LOCATOR:
                continue
            missing.append(page_no)
            locators.append(locator)
        return missing, locators

    def prefetch(self, handle: ObjectHandle, page_nos: "Iterable[int]",
                 window: int = 32, scan_hint: bool = False) -> int:
        """Bring missing pages into cache with parallel I/O; returns count."""
        missing, locators = self._missing_pages(handle, page_nos)
        if not missing:
            return 0
        with self.tracer.span("prefetch", "buffer",
                              object=handle.name, pages=len(missing)):
            payloads = handle.dbspace.read_pages(locators,
                                                 scan_hint=scan_hint)
            for page_no, locator in zip(missing, locators):
                data = self.codec.decompress(payloads[locator])
                frame = Frame(data=data, locator=locator, page_no=page_no)
                self._insert((handle.object_id, page_no, handle.version), frame)
        self.metrics.counter("prefetched").increment(len(missing))
        return len(missing)

    def prefetch_issue(self, handle: ObjectHandle,
                       page_nos: "Iterable[int]", now: float,
                       scan_hint: bool = False) -> float:
        """Issue a prefetch for one object; see :meth:`prefetch_issue_many`."""
        return self.prefetch_issue_many([(handle, page_nos)], now,
                                        scan_hint=scan_hint)

    def prefetch_issue_many(
        self,
        requests: "Iterable[Tuple[ObjectHandle, Iterable[int]]]",
        now: float,
        scan_hint: bool = False,
    ) -> float:
        """Issue prefetches WITHOUT waiting: the pipelined scan path.

        Charges the I/O path from ``now`` and returns the batch's
        completion time without advancing the shared clock — the caller
        decodes the previous batch meanwhile and advances to this
        completion before consuming the pages.  Frames are inserted
        immediately (available once the caller has waited).  The recorded
        ``prefetch_issue`` span keeps its real end time, so traces show
        it overlapping the caller's decode spans.

        All requested objects' misses are issued together, grouped per
        dbspace into ONE timed read — so a scan batch covering several
        column objects reaches the object client as a single key list,
        where adjacent keys (columns loaded side by side) coalesce into
        ranged multi-gets.
        """
        plans: "List[Tuple[ObjectHandle, List[int], List[int]]]" = []
        by_space: "Dict[int, Tuple[PageStore, List[int]]]" = {}
        for handle, page_nos in requests:
            missing, locators = self._missing_pages(handle, page_nos)
            if not missing:
                continue
            plans.append((handle, missing, locators))
            space = by_space.setdefault(
                id(handle.dbspace), (handle.dbspace, [])
            )
            space[1].extend(locators)
        if not plans:
            return now
        done = now
        payload_maps: "Dict[int, Dict[int, bytes]]" = {}
        for space_id, (dbspace, locators) in by_space.items():
            payloads, space_done = dbspace.read_pages_at(
                locators, now, scan_hint=scan_hint
            )
            payload_maps[space_id] = payloads
            done = max(done, space_done)
        total = 0
        for handle, missing, locators in plans:
            payloads = payload_maps[id(handle.dbspace)]
            for page_no, locator in zip(missing, locators):
                data = self.codec.decompress(payloads[locator])
                frame = Frame(data=data, locator=locator, page_no=page_no)
                self._insert((handle.object_id, page_no, handle.version),
                             frame)
            total += len(missing)
        self.metrics.counter("prefetched").increment(total)
        self.metrics.counter("pipelined_prefetches").increment(total)
        self.tracer.record("prefetch_issue", "buffer", now, done,
                           objects=len(plans), pages=total)
        return done

    # ------------------------------------------------------------------ #
    # write path
    # ------------------------------------------------------------------ #

    def write_page(self, handle: ObjectHandle, page_no: int, data: bytes) -> None:
        """Install a dirty page image for the handle's transaction."""
        if not handle.writable:
            raise BufferError(f"handle {handle!r} is read-only")
        limit = handle.dbspace.page_size_limit or self.page_config.page_size
        if len(data) > limit:
            raise BufferError(
                f"page image of {len(data)} bytes exceeds page size "
                f"{limit} of dbspace {handle.dbspace.name!r}"
            )
        txn = handle.txn
        assert txn is not None
        key = (handle.object_id, page_no, handle.frame_tag())
        frame = self._frames.get(key)
        if frame is None:
            # Base the frame on the committed image's locator so a flush
            # correctly supersedes it.
            base_locator = handle.blockmap.lookup(page_no)
            frame = Frame(data=bytes(data), locator=base_locator,
                          page_no=page_no)
            frame.dirty = True
            frame.handle = handle
            self._txn_dirty.setdefault(txn.txn_id, OrderedDict())[key] = None  # type: ignore[attr-defined]
            self._insert(key, frame)
        else:
            self._used_bytes += len(data) - frame.size
            frame.data = bytes(data)
            if not frame.dirty:
                frame.dirty = True
                frame.handle = handle
                self._txn_dirty.setdefault(txn.txn_id, OrderedDict())[key] = None  # type: ignore[attr-defined]
            self._touch(key)
            self._evict_if_needed()
        handle.page_count = max(handle.page_count, page_no + 1)

    def _flush_frames(
        self,
        entries: "List[Tuple[Tuple[int, int, FrameTag], Frame]]",
        commit_mode: bool,
    ) -> None:
        """Write dirty frames to their dbspaces with parallel I/O.

        Frames are grouped per dbspace and written through the dbspace's
        windowed-parallel write path; each flush feeds the owning
        transaction's GC sink and updates its working blockmap.
        """
        span = self.tracer.begin("flush", "buffer",
                                 pages=len(entries), commit=commit_mode)
        try:
            self._flush_frames_inner(entries, commit_mode)
        finally:
            self.tracer.finish(span)

    def _flush_frames_inner(
        self,
        entries: "List[Tuple[Tuple[int, int, FrameTag], Frame]]",
        commit_mode: bool,
    ) -> None:
        groups: "Dict[Tuple[int, int], List[Tuple[Tuple[int, int, FrameTag], Frame]]]" = {}
        stores: "Dict[Tuple[int, int], PageStore]" = {}
        for key, frame in entries:
            handle = frame.handle
            assert handle is not None and handle.txn is not None
            group_key = (id(handle.dbspace), handle.txn.txn_id)  # type: ignore[attr-defined]
            groups.setdefault(group_key, []).append((key, frame))
            stores[group_key] = handle.dbspace
        for group_key, group in groups.items():
            dbspace = stores[group_key]
            payloads = [self.codec.compress(frame.data) for __, frame in group]
            # Parallel batch writes always allocate fresh locators; the
            # update-in-place fast path only applies to single-page flushes
            # of metadata (blockmap nodes) on conventional dbspaces.
            locators = dbspace.write_pages(
                payloads,
                txn_id=group_key[1],
                commit_mode=commit_mode,
            )
            for (key, frame), new_locator in zip(group, locators):
                handle = frame.handle
                assert handle is not None and handle.txn is not None
                frame_txn = handle.txn
                sink = frame_txn.sink_for(handle.dbspace.name)  # type: ignore[attr-defined]
                old_locator = frame.locator
                was_fresh = frame.fresh
                sink.on_allocate(new_locator)
                if old_locator != NULL_LOCATOR:
                    sink.on_replace(old_locator, fresh=was_fresh)
                handle.blockmap.set(frame.page_no, new_locator)
                frame.locator = new_locator
                frame.fresh = True
                frame.dirty = False
                self.metrics.counter("dirty_flushes").increment()
                dirty_set = self._txn_dirty.get(frame_txn.txn_id)  # type: ignore[attr-defined]
                if dirty_set is not None:
                    dirty_set.pop(key, None)

    def flush_txn(self, txn_id: int, commit_mode: bool = True) -> int:
        """Flush all of a transaction's dirty pages; returns pages flushed."""
        keys = list(self._txn_dirty.get(txn_id, ()))
        entries = []
        for key in keys:
            frame = self._frames.get(key)
            if frame is not None and frame.dirty:
                entries.append((key, frame))
        if entries:
            self._flush_frames(entries, commit_mode=commit_mode)
        self._txn_dirty.pop(txn_id, None)
        return len(entries)

    def promote_txn_frames(self, txn_id: int, versions: "Dict[int, int]") -> None:
        """Re-tag a committed transaction's frames as the new version.

        ``versions`` maps object_id to the newly committed version number so
        readers of that version immediately hit the cache.
        """
        working = [
            (key, frame) for key, frame in list(self._frames.items())
            if key[2] == ("w", txn_id)
        ]
        for (object_id, page_no, __), frame in working:
            self._remove((object_id, page_no, ("w", txn_id)))
            if frame.dirty:
                raise BufferError(
                    f"dirty frame survived commit flush: object {object_id} "
                    f"page {page_no}"
                )
            if object_id in versions:
                frame.fresh = False
                frame.handle = None
                self._insert((object_id, page_no, versions[object_id]), frame)

    def drop_txn_frames(self, txn_id: int) -> int:
        """Discard a rolled-back transaction's working frames."""
        victims = [key for key in self._frames if key[2] == ("w", txn_id)]
        for key in victims:
            self._remove(key)
        self._txn_dirty.pop(txn_id, None)
        return len(victims)

    def invalidate_all(self) -> None:
        """Drop every frame (node crash simulation)."""
        self._frames.clear()
        self._txn_dirty.clear()
        self._used_bytes = 0

    def stats(self) -> "Dict[str, float]":
        return self.metrics.snapshot()
