"""Crash recovery: checkpoint load + log replay (Sections 3.2-3.3).

Recovery starts from the last checkpoint and replays the transaction log:

- ``alloc_range`` records rebuild the key generator's active sets and the
  maximum allocated key (Table 1, steps at clock 120);
- ``txn_commit`` records re-publish identities, re-enter the commit chain,
  trim the active sets, and re-apply RB block allocations to the freelists;
- ``gc_collect`` records mark chain entries whose RF pages were already
  deleted before the crash: they leave the chain and their RF block runs
  are freed in the reconstructed freelists;
- ``txn_rollback`` records need no action: a rolled-back transaction's
  block allocations never made it into any checkpoint or commit record, and
  its cloud allocations remain covered by the (untrimmed) active set.

Transactions that were *active* at the crash leave no trace in the log;
their cloud allocations are reclaimed by the node-restart GC, which polls
the coordinator's active set for the node (Table 1, clock 150).
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.blockstore.freelist import Freelist
from repro.core.keygen import ObjectKeyGenerator
from repro.core.log import (
    ALLOC_RANGE,
    GC_COLLECT,
    OBJECT_CREATED,
    TXN_COMMIT,
    TXN_ROLLBACK,
    TransactionLog,
)
from repro.core.txn import CommitChainEntry
from repro.storage.identity import Catalog, IdentityObject
from repro.storage.locator import block_range


@dataclass
class RecoveredState:
    """Everything recovery reconstructs."""

    catalog: Catalog
    keygen: ObjectKeyGenerator
    chain_entries: "List[CommitChainEntry]"
    freelists: "Dict[str, Freelist]"
    commit_seq: int
    replayed_commits: int = 0
    replayed_allocations: int = 0


def encode_checkpoint(
    catalog: Catalog,
    keygen: ObjectKeyGenerator,
    freelists: "Dict[str, Freelist]",
    chain_payloads: "List[Dict[str, object]]",
    commit_seq: int,
) -> "Dict[str, object]":
    """Build the JSON-serializable checkpoint state."""
    return {
        "catalog": base64.b64encode(catalog.to_bytes()).decode("ascii"),
        "keygen": keygen.checkpoint_state(),
        "freelists": {
            name: base64.b64encode(freelist.to_bytes()).decode("ascii")
            for name, freelist in freelists.items()
        },
        "chain": chain_payloads,
        "commit_seq": commit_seq,
    }


def recover(log: TransactionLog) -> RecoveredState:
    """Reconstruct engine state from the last checkpoint plus replay."""
    state = log.last_checkpoint_state()
    if state is not None:
        catalog = Catalog.from_bytes(
            base64.b64decode(state["catalog"])  # type: ignore[arg-type]
        )
        keygen = ObjectKeyGenerator.from_checkpoint(log, state["keygen"])  # type: ignore[arg-type]
        freelists = {
            name: Freelist.from_bytes(base64.b64decode(raw))
            for name, raw in state["freelists"].items()  # type: ignore[union-attr]
        }
        chain = [
            CommitChainEntry.from_payload(payload)
            for payload in state["chain"]  # type: ignore[union-attr]
        ]
        commit_seq = int(state["commit_seq"])  # type: ignore[arg-type]
    else:
        catalog = Catalog()
        keygen = ObjectKeyGenerator.from_checkpoint(log, None)
        freelists = {}
        chain = []
        commit_seq = 0

    recovered = RecoveredState(
        catalog=catalog,
        keygen=keygen,
        chain_entries=chain,
        freelists=freelists,
        commit_seq=commit_seq,
    )

    for record in log.records_since_checkpoint():
        if record.kind == ALLOC_RANGE:
            payload = record.payload
            keygen.replay_allocation(
                str(payload["node"]), int(payload["lo"]), int(payload["hi"])
            )
            recovered.replayed_allocations += 1
        elif record.kind == OBJECT_CREATED:
            payload = record.payload
            if not catalog.has_object(str(payload["name"])):
                created = catalog.register_object(
                    str(payload["name"]), str(payload["dbspace"])
                )
                if created != int(payload["object_id"]):  # type: ignore[arg-type]
                    raise RuntimeError(
                        "DDL replay produced object id "
                        f"{created}, log recorded {payload['object_id']}"
                    )
        elif record.kind == TXN_COMMIT:
            _replay_commit(recovered, record.payload)
        elif record.kind == GC_COLLECT:
            _replay_gc(recovered, record.payload)
        elif record.kind == TXN_ROLLBACK:
            # Nothing to undo: see module docstring.
            continue
    return recovered


def _replay_commit(state: RecoveredState, payload: "Dict[str, object]") -> None:
    entry = CommitChainEntry.from_payload(payload["chain_entry"])  # type: ignore[arg-type]
    state.chain_entries.append(entry)
    state.commit_seq = max(state.commit_seq, entry.commit_seq)
    state.replayed_commits += 1
    for identity_dict in payload["identities"]:  # type: ignore[union-attr]
        identity = IdentityObject.from_dict(identity_dict)
        if not state.catalog.has_object(identity.name):
            # Object was created after the checkpoint; recreate it.
            state.catalog.register_object(identity.name, identity.dbspace)
        if not state.catalog.has_version(identity.object_id, identity.version):
            state.catalog.publish(identity)
    consumed = [tuple(pair) for pair in payload["consumed_key_ranges"]]  # type: ignore[union-attr]
    if consumed:
        state.keygen.notify_committed(str(payload["node"]), consumed)  # type: ignore[arg-type]
    # Re-apply RB block allocations to the reconstructed freelists.
    for dbspace_name, bitmap in entry.rb.items():
        freelist = state.freelists.get(dbspace_name)
        if freelist is None:
            continue
        for locator in bitmap.block_locators():
            start, nblocks = block_range(locator)
            freelist.mark_used(start, nblocks)


def _replay_gc(state: RecoveredState, payload: "Dict[str, object]") -> None:
    commit_seq = int(payload["commit_seq"])  # type: ignore[arg-type]
    entry = next(
        (e for e in state.chain_entries if e.commit_seq == commit_seq), None
    )
    if entry is None:
        return
    state.chain_entries.remove(entry)
    # The entry's RF pages were deleted before the crash: block runs leave
    # the freelist, catalog versions disappear.  Cloud deletions already
    # happened on the durable store, so nothing more is needed for them.
    for dbspace_name, bitmap in entry.rf.items():
        freelist = state.freelists.get(dbspace_name)
        if freelist is None:
            continue
        for locator in bitmap.block_locators():
            start, nblocks = block_range(locator)
            freelist.mark_free(start, nblocks)
    for object_id, version in entry.superseded:
        if state.catalog.has_version(object_id, version):
            current = state.catalog.current(object_id)
            if current.version != version:
                state.catalog.drop_version(object_id, version)
