"""Deterministic TPC-H data generator (a laptop-scale dbgen).

Row counts scale with the scale factor exactly as in the spec (supplier
10k/SF, part 200k/SF, customer 150k/SF, orders 1.5M/SF, 1-7 lineitems per
order); value distributions follow the spec where they affect query
behaviour (dates, prices, discounts, flags, segments, priorities, brands,
types, containers, nations/regions) and are simplified where only text
cosmetics differ (comments are word salads seeded with the phrases Q13 and
Q16 grep for).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.sim.rng import DeterministicRng
from repro.tpch.dates import CURRENT_DATE, d

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# nation -> region index, in nationkey order (the spec's 25 nations).
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
CONTAINERS_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
TYPES_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPES_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPES_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory",
    "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
]
COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "deposits", "packages", "accounts",
    "instructions", "foxes", "ideas", "theodolites", "pinto", "beans",
    "requests", "platelets", "excuses", "asymptotes", "somas", "dolphins",
]

ORDER_DATE_MIN = d(1992, 1, 1)
ORDER_DATE_MAX = d(1998, 8, 2)


class TpchGenerator:
    """Generates TPC-H tables deterministically for a scale factor."""

    def __init__(self, scale_factor: float = 0.01, seed: int = 7) -> None:
        if scale_factor <= 0:
            raise ValueError(f"scale factor must be positive, got {scale_factor}")
        self.scale_factor = scale_factor
        self._rng = DeterministicRng(seed, f"tpch/{scale_factor}")
        self.supplier_count = max(10, int(10_000 * scale_factor))
        self.part_count = max(20, int(200_000 * scale_factor))
        self.customer_count = max(30, int(150_000 * scale_factor))
        self.order_count = max(100, int(1_500_000 * scale_factor))

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _comment(self, rng: DeterministicRng, special: float = 0.0) -> str:
        words = [rng.choice(COMMENT_WORDS) for __ in range(rng.randint(3, 6))]
        if special and rng.random() < special:
            # Q13 greps for '%special%requests%'.
            words.insert(rng.randint(0, len(words)), "special")
            words.append("requests")
        return " ".join(words)

    def _supplier_comment(self, rng: DeterministicRng) -> str:
        words = [rng.choice(COMMENT_WORDS) for __ in range(rng.randint(3, 6))]
        if rng.random() < 0.005:
            # Q16 greps for '%Customer%Complaints%'.
            words.append("Customer")
            words.append("Complaints")
        return " ".join(words)

    @staticmethod
    def _phone(rng: DeterministicRng, nationkey: int) -> str:
        return (
            f"{10 + nationkey}-{rng.randint(100, 999)}-"
            f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
        )

    @staticmethod
    def _retail_price(partkey: int) -> float:
        return (90000 + ((partkey // 10) % 20001) + 100 * (partkey % 1000)) / 100.0

    # ------------------------------------------------------------------ #
    # tables (tuples in schema column order)
    # ------------------------------------------------------------------ #

    def region(self) -> "List[Tuple[object, ...]]":
        rng = self._rng.substream("region")
        return [
            (i, name, self._comment(rng)) for i, name in enumerate(REGIONS)
        ]

    def nation(self) -> "List[Tuple[object, ...]]":
        return [
            (i, name, region) for i, (name, region) in enumerate(NATIONS)
        ]

    def supplier(self) -> "List[Tuple[object, ...]]":
        rng = self._rng.substream("supplier")
        rows = []
        for suppkey in range(1, self.supplier_count + 1):
            nationkey = rng.randint(0, 24)
            rows.append(
                (
                    suppkey,
                    f"Supplier#{suppkey:09d}",
                    f"addr-{rng.randint(1, 10 ** 6)}",
                    nationkey,
                    self._phone(rng, nationkey),
                    round(rng.uniform(-999.99, 9999.99), 2),
                    self._supplier_comment(rng),
                )
            )
        return rows

    def customer(self) -> "List[Tuple[object, ...]]":
        rng = self._rng.substream("customer")
        rows = []
        for custkey in range(1, self.customer_count + 1):
            nationkey = rng.randint(0, 24)
            rows.append(
                (
                    custkey,
                    f"Customer#{custkey:09d}",
                    f"addr-{rng.randint(1, 10 ** 6)}",
                    nationkey,
                    self._phone(rng, nationkey),
                    round(rng.uniform(-999.99, 9999.99), 2),
                    rng.choice(SEGMENTS),
                    self._comment(rng, special=0.01),
                )
            )
        return rows

    def part(self) -> "List[Tuple[object, ...]]":
        rng = self._rng.substream("part")
        rows = []
        for partkey in range(1, self.part_count + 1):
            name = " ".join(rng.sample(NAME_WORDS, 5))
            mfgr = f"Manufacturer#{rng.randint(1, 5)}"
            brand = f"Brand#{mfgr[-1]}{rng.randint(1, 5)}"
            p_type = (
                f"{rng.choice(TYPES_1)} {rng.choice(TYPES_2)} "
                f"{rng.choice(TYPES_3)}"
            )
            container = f"{rng.choice(CONTAINERS_1)} {rng.choice(CONTAINERS_2)}"
            rows.append(
                (
                    partkey,
                    name,
                    mfgr,
                    brand,
                    p_type,
                    rng.randint(1, 50),
                    container,
                    self._retail_price(partkey),
                )
            )
        return rows

    def partsupp(self) -> "List[Tuple[object, ...]]":
        rng = self._rng.substream("partsupp")
        rows = []
        for partkey in range(1, self.part_count + 1):
            for i in range(4):
                suppkey = (
                    (partkey + (i * ((self.supplier_count // 4) + 1)))
                    % self.supplier_count
                ) + 1
                rows.append(
                    (
                        partkey,
                        suppkey,
                        rng.randint(1, 9999),
                        round(rng.uniform(1.0, 1000.0), 2),
                    )
                )
        return rows

    def orders_and_lineitems(
        self,
    ) -> "Tuple[List[Tuple[object, ...]], List[Tuple[object, ...]]]":
        rng = self._rng.substream("orders")
        orders: "List[Tuple[object, ...]]" = []
        lineitems: "List[Tuple[object, ...]]" = []
        for index in range(1, self.order_count + 1):
            # dbgen leaves gaps in the orderkey space; keep the flavour.
            orderkey = index * 4 - rng.randint(0, 2)
            custkey = rng.randint(1, self.customer_count)
            orderdate = rng.randint(ORDER_DATE_MIN, ORDER_DATE_MAX)
            line_count = rng.randint(1, 7)
            total = 0.0
            statuses = []
            for line_no in range(1, line_count + 1):
                partkey = rng.randint(1, self.part_count)
                suppkey = rng.randint(1, self.supplier_count)
                quantity = float(rng.randint(1, 50))
                extended = round(quantity * self._retail_price(partkey) / 10, 2)
                discount = rng.randint(0, 10) / 100.0
                tax = rng.randint(0, 8) / 100.0
                shipdate = orderdate + rng.randint(1, 121)
                commitdate = orderdate + rng.randint(30, 90)
                receiptdate = shipdate + rng.randint(1, 30)
                linestatus = "F" if shipdate <= CURRENT_DATE else "O"
                if receiptdate <= CURRENT_DATE:
                    returnflag = rng.choice(["R", "A"])
                else:
                    returnflag = "N"
                statuses.append(linestatus)
                total += extended * (1 + tax) * (1 - discount)
                lineitems.append(
                    (
                        orderkey,
                        partkey,
                        suppkey,
                        line_no,
                        quantity,
                        extended,
                        discount,
                        tax,
                        returnflag,
                        linestatus,
                        shipdate,
                        commitdate,
                        receiptdate,
                        rng.choice(SHIP_INSTRUCTIONS),
                        rng.choice(SHIP_MODES),
                    )
                )
            if all(s == "F" for s in statuses):
                status = "F"
            elif all(s == "O" for s in statuses):
                status = "O"
            else:
                status = "P"
            orders.append(
                (
                    orderkey,
                    custkey,
                    status,
                    round(total, 2),
                    orderdate,
                    rng.choice(PRIORITIES),
                    0,
                    self._comment(rng, special=0.01),
                )
            )
        return orders, lineitems

    def all_tables(self) -> "Dict[str, List[Tuple[object, ...]]]":
        """Every table, keyed by name (orders/lineitem generated together)."""
        orders, lineitems = self.orders_and_lineitems()
        return {
            "region": self.region(),
            "nation": self.nation(),
            "supplier": self.supplier(),
            "customer": self.customer(),
            "part": self.part(),
            "partsupp": self.partsupp(),
            "orders": orders,
            "lineitem": lineitems,
        }
