"""The 22 TPC-H benchmark queries over the columnar executor.

Each query is a function ``q<N>(ctx, sf)`` taking a
:class:`~repro.columnar.query.QueryContext` and the scale factor (a few
queries' constants are SF-relative per the spec).  Queries use the spec's
validation parameters and return relations; the storage access patterns
(columns touched, zone-map-prunable predicates, HG-index joins) follow the
official SQL.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.columnar.exec import (
    concat,
    distinct,
    extend,
    filter_rows,
    group_by,
    hash_join,
    order_by,
    select,
)
from repro.columnar.query import QueryContext, Relation, n_rows
from repro.columnar.vec import to_list
from repro.tpch.dates import d, year_of


def _revenue(ctx: QueryContext, rel: Relation, name: str = "revenue") -> Relation:
    return extend(
        ctx, rel, name,
        lambda price, discount: price * (1.0 - discount),
        ["l_extendedprice", "l_discount"],
    )


def _nation_of_region(ctx: QueryContext, region_name: str) -> Relation:
    region = ctx.read(
        "region", ["r_regionkey"], {"r_name": lambda v: v == region_name}
    )
    nation = ctx.read("nation", ["n_nationkey", "n_name", "n_regionkey"])
    return hash_join(
        ctx, nation, region, ["n_regionkey"], ["r_regionkey"], semi=True
    )


def q1(ctx: QueryContext, sf: float) -> Relation:
    """Pricing summary report."""
    cutoff = d(1998, 12, 1) - 90
    li = ctx.read(
        "lineitem",
        ["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
         "l_discount", "l_tax"],
        {"l_shipdate": (None, cutoff)},
    )
    li = _revenue(ctx, li, "disc_price")
    li = extend(ctx, li, "charge",
                lambda p, t: p * (1.0 + t), ["disc_price", "l_tax"])
    agg = group_by(
        ctx, li, ["l_returnflag", "l_linestatus"],
        {
            "sum_qty": ("sum", "l_quantity"),
            "sum_base_price": ("sum", "l_extendedprice"),
            "sum_disc_price": ("sum", "disc_price"),
            "sum_charge": ("sum", "charge"),
            "avg_qty": ("avg", "l_quantity"),
            "avg_price": ("avg", "l_extendedprice"),
            "avg_disc": ("avg", "l_discount"),
            "count_order": ("count", None),
        },
    )
    return order_by(ctx, agg,
                    [("l_returnflag", False), ("l_linestatus", False)])


def q2(ctx: QueryContext, sf: float) -> Relation:
    """Minimum cost supplier (EUROPE, size 15, *BRASS)."""
    nation = _nation_of_region(ctx, "EUROPE")
    supplier = ctx.read(
        "supplier",
        ["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
         "s_acctbal", "s_comment"],
    )
    supplier = hash_join(ctx, supplier, nation,
                         ["s_nationkey"], ["n_nationkey"])
    part = ctx.read(
        "part", ["p_partkey", "p_mfgr"],
        {"p_size": (15, 15), "p_type": lambda t: t.endswith("BRASS")},
    )
    ps = ctx.read("partsupp", ["ps_partkey", "ps_suppkey", "ps_supplycost"])
    ps = hash_join(ctx, ps, part, ["ps_partkey"], ["p_partkey"])
    ps = hash_join(ctx, ps, supplier, ["ps_suppkey"], ["s_suppkey"])
    mins = group_by(ctx, ps, ["ps_partkey"],
                    {"min_cost": ("min", "ps_supplycost")})
    ps = hash_join(ctx, ps, mins, ["ps_partkey"], ["ps_partkey"])
    ps = filter_rows(ctx, ps, lambda cost, m: cost == m,
                     ["ps_supplycost", "min_cost"])
    out = select(ps, ["s_acctbal", "s_name", "n_name", "ps_partkey",
                      "p_mfgr", "s_address", "s_phone", "s_comment"])
    return order_by(
        ctx, out,
        [("s_acctbal", True), ("n_name", False), ("s_name", False),
         ("ps_partkey", False)],
        limit=100,
    )


def q3(ctx: QueryContext, sf: float) -> Relation:
    """Shipping priority (BUILDING segment)."""
    pivot = d(1995, 3, 15)
    cust = ctx.read("customer", ["c_custkey"],
                    {"c_mktsegment": lambda v: v == "BUILDING"})
    orders = ctx.read(
        "orders", ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        {"o_orderdate": (None, pivot - 1)},
    )
    orders = hash_join(ctx, orders, cust, ["o_custkey"], ["c_custkey"],
                       semi=True)
    li = ctx.read(
        "lineitem", ["l_orderkey", "l_extendedprice", "l_discount"],
        {"l_shipdate": (pivot + 1, None)},
    )
    joined = hash_join(ctx, li, orders, ["l_orderkey"], ["o_orderkey"])
    joined = _revenue(ctx, joined)
    agg = group_by(
        ctx, joined, ["l_orderkey", "o_orderdate", "o_shippriority"],
        {"revenue": ("sum", "revenue")},
    )
    return order_by(ctx, agg,
                    [("revenue", True), ("o_orderdate", False)], limit=10)


def q4(ctx: QueryContext, sf: float) -> Relation:
    """Order priority checking (1993-Q3, late lines exist)."""
    lo, hi = d(1993, 7, 1), d(1993, 10, 1) - 1
    orders = ctx.read("orders", ["o_orderkey", "o_orderpriority"],
                      {"o_orderdate": (lo, hi)})
    li = ctx.read("lineitem",
                  ["l_orderkey", "l_commitdate", "l_receiptdate"])
    li = filter_rows(ctx, li, lambda c, r: c < r,
                     ["l_commitdate", "l_receiptdate"])
    orders = hash_join(ctx, orders, li, ["o_orderkey"], ["l_orderkey"],
                       semi=True)
    agg = group_by(ctx, orders, ["o_orderpriority"],
                   {"order_count": ("count", None)})
    return order_by(ctx, agg, [("o_orderpriority", False)])


def q5(ctx: QueryContext, sf: float) -> Relation:
    """Local supplier volume (ASIA, 1994)."""
    nation = _nation_of_region(ctx, "ASIA")
    orders = ctx.read("orders", ["o_orderkey", "o_custkey"],
                      {"o_orderdate": (d(1994, 1, 1), d(1995, 1, 1) - 1)})
    cust = ctx.read("customer", ["c_custkey", "c_nationkey"])
    orders = hash_join(ctx, orders, cust, ["o_custkey"], ["c_custkey"])
    li = ctx.read("lineitem",
                  ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"])
    li = hash_join(ctx, li, orders, ["l_orderkey"], ["o_orderkey"])
    supp = ctx.read("supplier", ["s_suppkey", "s_nationkey"])
    li = hash_join(ctx, li, supp, ["l_suppkey"], ["s_suppkey"])
    li = filter_rows(ctx, li, lambda c, s: c == s,
                     ["c_nationkey", "s_nationkey"])
    li = hash_join(ctx, li, nation, ["s_nationkey"], ["n_nationkey"])
    li = _revenue(ctx, li)
    agg = group_by(ctx, li, ["n_name"], {"revenue": ("sum", "revenue")})
    return order_by(ctx, agg, [("revenue", True)])


def q6(ctx: QueryContext, sf: float) -> Relation:
    """Forecasting revenue change (tight scan: zone maps shine)."""
    li = ctx.read(
        "lineitem", ["l_extendedprice", "l_discount"],
        {
            "l_shipdate": (d(1994, 1, 1), d(1995, 1, 1) - 1),
            "l_discount": (0.05, 0.07),
            "l_quantity": (None, 23.999),
        },
    )
    li = extend(ctx, li, "revenue",
                lambda p, dc: p * dc, ["l_extendedprice", "l_discount"])
    return group_by(ctx, li, [], {"revenue": ("sum", "revenue")})


def q7(ctx: QueryContext, sf: float) -> Relation:
    """Volume shipping between FRANCE and GERMANY, 1995-1996."""
    nation = ctx.read("nation", ["n_nationkey", "n_name"],
                      {"n_name": lambda v: v in ("FRANCE", "GERMANY")})
    li = ctx.read(
        "lineitem",
        ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount",
         "l_shipdate"],
        {"l_shipdate": (d(1995, 1, 1), d(1996, 12, 31))},
    )
    supp = ctx.read("supplier", ["s_suppkey", "s_nationkey"])
    li = hash_join(ctx, li, supp, ["l_suppkey"], ["s_suppkey"])
    li = hash_join(ctx, li, nation, ["s_nationkey"], ["n_nationkey"])
    li = extend(ctx, li, "supp_nation", lambda n: n, ["n_name"])
    orders = ctx.read("orders", ["o_orderkey", "o_custkey"])
    cust = ctx.read("customer", ["c_custkey", "c_nationkey"])
    orders = hash_join(ctx, orders, cust, ["o_custkey"], ["c_custkey"])
    cust_nation = ctx.read("nation", ["n_nationkey", "n_name"],
                           {"n_name": lambda v: v in ("FRANCE", "GERMANY")})
    cust_nation = extend(ctx, cust_nation, "cust_nation",
                         lambda n: n, ["n_name"])
    orders = hash_join(ctx, orders, select(cust_nation,
                                           ["n_nationkey", "cust_nation"]),
                       ["c_nationkey"], ["n_nationkey"])
    li = hash_join(ctx, li, select(orders, ["o_orderkey", "cust_nation"]),
                   ["l_orderkey"], ["o_orderkey"])
    li = filter_rows(
        ctx, li,
        lambda s, c: (s, c) in (("FRANCE", "GERMANY"), ("GERMANY", "FRANCE")),
        ["supp_nation", "cust_nation"],
    )
    li = _revenue(ctx, li, "volume")
    li = extend(ctx, li, "l_year", year_of, ["l_shipdate"])
    agg = group_by(ctx, li, ["supp_nation", "cust_nation", "l_year"],
                   {"revenue": ("sum", "volume")})
    return order_by(ctx, agg, [("supp_nation", False),
                               ("cust_nation", False), ("l_year", False)])


def q8(ctx: QueryContext, sf: float) -> Relation:
    """National market share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL)."""
    nation = _nation_of_region(ctx, "AMERICA")
    part = ctx.read("part", ["p_partkey"],
                    {"p_type": lambda t: t == "ECONOMY ANODIZED STEEL"})
    li = ctx.read(
        "lineitem",
        ["l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice",
         "l_discount"],
    )
    li = hash_join(ctx, li, part, ["l_partkey"], ["p_partkey"], semi=True)
    orders = ctx.read("orders", ["o_orderkey", "o_custkey", "o_orderdate"],
                      {"o_orderdate": (d(1995, 1, 1), d(1996, 12, 31))})
    cust = ctx.read("customer", ["c_custkey", "c_nationkey"])
    orders = hash_join(ctx, orders, cust, ["o_custkey"], ["c_custkey"])
    orders = hash_join(ctx, orders, nation, ["c_nationkey"], ["n_nationkey"],
                       semi=True)
    li = hash_join(ctx, li, select(orders, ["o_orderkey", "o_orderdate"]),
                   ["l_orderkey"], ["o_orderkey"])
    supp = ctx.read("supplier", ["s_suppkey", "s_nationkey"])
    all_nations = ctx.read("nation", ["n_nationkey", "n_name"])
    supp = hash_join(ctx, supp, all_nations, ["s_nationkey"], ["n_nationkey"])
    li = hash_join(ctx, li, select(supp, ["s_suppkey", "n_name"]),
                   ["l_suppkey"], ["s_suppkey"])
    li = _revenue(ctx, li, "volume")
    li = extend(ctx, li, "o_year", year_of, ["o_orderdate"])
    li = extend(ctx, li, "brazil_volume",
                lambda v, n: v if n == "BRAZIL" else 0.0,
                ["volume", "n_name"])
    agg = group_by(ctx, li, ["o_year"],
                   {"total": ("sum", "volume"),
                    "brazil": ("sum", "brazil_volume")})
    agg = extend(ctx, agg, "mkt_share",
                 lambda b, t: (b / t) if t else 0.0, ["brazil", "total"])
    return order_by(ctx, select(agg, ["o_year", "mkt_share"]),
                    [("o_year", False)])


def q9(ctx: QueryContext, sf: float) -> Relation:
    """Product type profit ('%green%' parts) by nation and year."""
    part = ctx.read("part", ["p_partkey"],
                    {"p_name": lambda nm: "green" in nm})
    li = ctx.read(
        "lineitem",
        ["l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
         "l_extendedprice", "l_discount"],
    )
    li = hash_join(ctx, li, part, ["l_partkey"], ["p_partkey"], semi=True)
    ps = ctx.read("partsupp", ["ps_partkey", "ps_suppkey", "ps_supplycost"])
    li = hash_join(ctx, li, ps, ["l_partkey", "l_suppkey"],
                   ["ps_partkey", "ps_suppkey"])
    supp = ctx.read("supplier", ["s_suppkey", "s_nationkey"])
    nations = ctx.read("nation", ["n_nationkey", "n_name"])
    supp = hash_join(ctx, supp, nations, ["s_nationkey"], ["n_nationkey"])
    li = hash_join(ctx, li, select(supp, ["s_suppkey", "n_name"]),
                   ["l_suppkey"], ["s_suppkey"])
    orders = ctx.read("orders", ["o_orderkey", "o_orderdate"])
    li = hash_join(ctx, li, orders, ["l_orderkey"], ["o_orderkey"])
    li = extend(ctx, li, "o_year", year_of, ["o_orderdate"])
    li = extend(
        ctx, li, "amount",
        lambda price, disc, cost, qty: price * (1 - disc) - cost * qty,
        ["l_extendedprice", "l_discount", "ps_supplycost", "l_quantity"],
    )
    agg = group_by(ctx, li, ["n_name", "o_year"],
                   {"sum_profit": ("sum", "amount")})
    return order_by(ctx, agg, [("n_name", False), ("o_year", True)])


def q10(ctx: QueryContext, sf: float) -> Relation:
    """Returned item reporting (1993-Q4, flag R); top 20 customers."""
    orders = ctx.read("orders", ["o_orderkey", "o_custkey"],
                      {"o_orderdate": (d(1993, 10, 1), d(1994, 1, 1) - 1)})
    li = ctx.read(
        "lineitem", ["l_orderkey", "l_extendedprice", "l_discount"],
        {"l_returnflag": lambda v: v == "R"},
    )
    li = hash_join(ctx, li, orders, ["l_orderkey"], ["o_orderkey"])
    cust = ctx.read(
        "customer",
        ["c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey",
         "c_address", "c_comment"],
    )
    li = hash_join(ctx, li, cust, ["o_custkey"], ["c_custkey"])
    nations = ctx.read("nation", ["n_nationkey", "n_name"])
    li = hash_join(ctx, li, nations, ["c_nationkey"], ["n_nationkey"])
    li = _revenue(ctx, li)
    agg = group_by(
        ctx, li,
        ["o_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
         "c_address", "c_comment"],
        {"revenue": ("sum", "revenue")},
    )
    return order_by(ctx, agg, [("revenue", True)], limit=20)


def q11(ctx: QueryContext, sf: float) -> Relation:
    """Important stock identification (GERMANY)."""
    nation = ctx.read("nation", ["n_nationkey"],
                      {"n_name": lambda v: v == "GERMANY"})
    supp = ctx.read("supplier", ["s_suppkey", "s_nationkey"])
    supp = hash_join(ctx, supp, nation, ["s_nationkey"], ["n_nationkey"],
                     semi=True)
    ps = ctx.read("partsupp",
                  ["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"])
    ps = hash_join(ctx, ps, supp, ["ps_suppkey"], ["s_suppkey"], semi=True)
    ps = extend(ctx, ps, "value",
                lambda cost, qty: cost * qty,
                ["ps_supplycost", "ps_availqty"])
    total = group_by(ctx, ps, [], {"total": ("sum", "value")})
    threshold = (total["total"][0] if n_rows(total) else 0.0) * (
        0.0001 / max(sf, 1e-9) if sf < 1 else 0.0001 / sf
    )
    agg = group_by(ctx, ps, ["ps_partkey"], {"value": ("sum", "value")})
    agg = filter_rows(ctx, agg, lambda v: v > threshold, ["value"])
    return order_by(ctx, agg, [("value", True)])


def q12(ctx: QueryContext, sf: float) -> Relation:
    """Shipping modes and order priority (MAIL/SHIP, 1994)."""
    li = ctx.read(
        "lineitem",
        ["l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate",
         "l_receiptdate"],
        {
            "l_receiptdate": (d(1994, 1, 1), d(1995, 1, 1) - 1),
            "l_shipmode": lambda v: v in ("MAIL", "SHIP"),
        },
    )
    li = filter_rows(
        ctx, li,
        lambda ship, commit, receipt: ship < commit < receipt,
        ["l_shipdate", "l_commitdate", "l_receiptdate"],
    )
    orders = ctx.read("orders", ["o_orderkey", "o_orderpriority"])
    li = hash_join(ctx, li, orders, ["l_orderkey"], ["o_orderkey"])
    li = extend(
        ctx, li, "high",
        lambda p: 1 if p in ("1-URGENT", "2-HIGH") else 0,
        ["o_orderpriority"],
    )
    li = extend(ctx, li, "low", lambda h: 1 - h, ["high"])
    agg = group_by(ctx, li, ["l_shipmode"],
                   {"high_line_count": ("sum", "high"),
                    "low_line_count": ("sum", "low")})
    return order_by(ctx, agg, [("l_shipmode", False)])


def q13(ctx: QueryContext, sf: float) -> Relation:
    """Customer order-count distribution (excluding special requests)."""
    orders = ctx.read(
        "orders", ["o_custkey"],
        {"o_comment": lambda c: not ("special" in c and
                                     "requests" in c.split("special", 1)[1])},
    )
    counts = group_by(ctx, orders, ["o_custkey"],
                      {"c_count": ("count", None)})
    cust = ctx.read("customer", ["c_custkey"])
    with_orders = hash_join(ctx, cust, counts, ["c_custkey"], ["o_custkey"])
    without = hash_join(ctx, cust, counts, ["c_custkey"], ["o_custkey"],
                        anti=True)
    without = extend(ctx, without, "c_count", lambda __: 0, ["c_custkey"])
    all_counts = concat(select(with_orders, ["c_custkey", "c_count"]),
                        select(without, ["c_custkey", "c_count"]))
    dist = group_by(ctx, all_counts, ["c_count"],
                    {"custdist": ("count", None)})
    return order_by(ctx, dist, [("custdist", True), ("c_count", True)])


def q14(ctx: QueryContext, sf: float) -> Relation:
    """Promotion effect (September 1995)."""
    li = ctx.read(
        "lineitem", ["l_partkey", "l_extendedprice", "l_discount"],
        {"l_shipdate": (d(1995, 9, 1), d(1995, 10, 1) - 1)},
    )
    part = ctx.read("part", ["p_partkey", "p_type"])
    li = hash_join(ctx, li, part, ["l_partkey"], ["p_partkey"])
    li = _revenue(ctx, li)
    li = extend(ctx, li, "promo",
                lambda rev, t: rev if t.startswith("PROMO") else 0.0,
                ["revenue", "p_type"])
    agg = group_by(ctx, li, [], {"promo": ("sum", "promo"),
                                 "total": ("sum", "revenue")})
    return extend(ctx, agg, "promo_revenue",
                  lambda p, t: (100.0 * p / t) if t else 0.0,
                  ["promo", "total"])


def q15(ctx: QueryContext, sf: float) -> Relation:
    """Top supplier (1996-Q1)."""
    li = ctx.read(
        "lineitem", ["l_suppkey", "l_extendedprice", "l_discount"],
        {"l_shipdate": (d(1996, 1, 1), d(1996, 4, 1) - 1)},
    )
    li = _revenue(ctx, li, "total_revenue")
    revenue = group_by(ctx, li, ["l_suppkey"],
                       {"total_revenue": ("sum", "total_revenue")})
    best = max(revenue["total_revenue"]) if n_rows(revenue) else 0.0
    top = filter_rows(ctx, revenue, lambda r: r == best, ["total_revenue"])
    supp = ctx.read("supplier", ["s_suppkey", "s_name", "s_address", "s_phone"])
    out = hash_join(ctx, supp, top, ["s_suppkey"], ["l_suppkey"])
    return order_by(ctx, out, [("s_suppkey", False)])


def q16(ctx: QueryContext, sf: float) -> Relation:
    """Parts/supplier relationship (excluding complaints)."""
    part = ctx.read(
        "part", ["p_partkey", "p_brand", "p_type", "p_size"],
        {
            "p_brand": lambda b: b != "Brand#45",
            "p_type": lambda t: not t.startswith("MEDIUM POLISHED"),
            "p_size": lambda s: s in (49, 14, 23, 45, 19, 3, 36, 9),
        },
    )
    ps = ctx.read("partsupp", ["ps_partkey", "ps_suppkey"])
    ps = hash_join(ctx, ps, part, ["ps_partkey"], ["p_partkey"])
    complainers = ctx.read(
        "supplier", ["s_suppkey"],
        {"s_comment": lambda c: "Customer" in c and
         "Complaints" in c.split("Customer", 1)[1]},
    )
    ps = hash_join(ctx, ps, complainers, ["ps_suppkey"], ["s_suppkey"],
                   anti=True)
    pairs = distinct(ctx, ps, ["p_brand", "p_type", "p_size", "ps_suppkey"])
    agg = group_by(ctx, pairs, ["p_brand", "p_type", "p_size"],
                   {"supplier_cnt": ("count", None)})
    return order_by(
        ctx, agg,
        [("supplier_cnt", True), ("p_brand", False), ("p_type", False),
         ("p_size", False)],
    )


def q17(ctx: QueryContext, sf: float) -> Relation:
    """Small-quantity-order revenue (Brand#23, MED BOX)."""
    part = ctx.read(
        "part", ["p_partkey"],
        {"p_brand": lambda b: b == "Brand#23",
         "p_container": lambda c: c == "MED BOX"},
    )
    li = ctx.read("lineitem", ["l_partkey", "l_quantity", "l_extendedprice"])
    li = hash_join(ctx, li, part, ["l_partkey"], ["p_partkey"], semi=True)
    avg_qty = group_by(ctx, li, ["l_partkey"], {"avg_qty": ("avg", "l_quantity")})
    li = hash_join(ctx, li, avg_qty, ["l_partkey"], ["l_partkey"])
    li = filter_rows(ctx, li, lambda q, a: q < 0.2 * a,
                     ["l_quantity", "avg_qty"])
    agg = group_by(ctx, li, [], {"total": ("sum", "l_extendedprice")})
    return extend(ctx, agg, "avg_yearly", lambda t: t / 7.0, ["total"])


def q18(ctx: QueryContext, sf: float) -> Relation:
    """Large volume customers (sum qty > 300)."""
    li = ctx.read("lineitem", ["l_orderkey", "l_quantity"])
    per_order = group_by(ctx, li, ["l_orderkey"],
                         {"sum_qty": ("sum", "l_quantity")})
    big = filter_rows(ctx, per_order, lambda q: q > 300.0, ["sum_qty"])
    orders = ctx.read("orders",
                      ["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"])
    big = hash_join(ctx, orders, big, ["o_orderkey"], ["l_orderkey"])
    cust = ctx.read("customer", ["c_custkey", "c_name"])
    big = hash_join(ctx, big, cust, ["o_custkey"], ["c_custkey"])
    return order_by(
        ctx,
        select(big, ["c_name", "o_custkey", "o_orderkey", "o_orderdate",
                     "o_totalprice", "sum_qty"]),
        [("o_totalprice", True), ("o_orderdate", False)],
        limit=100,
    )


def q19(ctx: QueryContext, sf: float) -> Relation:
    """Discounted revenue (three brand/container/quantity disjuncts)."""
    li = ctx.read(
        "lineitem",
        ["l_partkey", "l_quantity", "l_extendedprice", "l_discount"],
        {
            "l_shipmode": lambda m: m in ("AIR", "REG AIR"),
            "l_shipinstruct": lambda i: i == "DELIVER IN PERSON",
        },
    )
    part = ctx.read("part",
                    ["p_partkey", "p_brand", "p_container", "p_size"])
    li = hash_join(ctx, li, part, ["l_partkey"], ["p_partkey"])

    def qualifies(brand, container, size, qty):
        if (brand == "Brand#12"
                and container in ("SM CASE", "SM BOX", "SM PACK", "SM PKG")
                and 1 <= qty <= 11 and 1 <= size <= 5):
            return True
        if (brand == "Brand#23"
                and container in ("MED BAG", "MED BOX", "MED PKG", "MED PACK")
                and 10 <= qty <= 20 and 1 <= size <= 10):
            return True
        if (brand == "Brand#34"
                and container in ("LG CASE", "LG BOX", "LG PACK", "LG PKG")
                and 20 <= qty <= 30 and 1 <= size <= 15):
            return True
        return False

    li = filter_rows(ctx, li, qualifies,
                     ["p_brand", "p_container", "p_size", "l_quantity"])
    li = _revenue(ctx, li)
    return group_by(ctx, li, [], {"revenue": ("sum", "revenue")})


def q20(ctx: QueryContext, sf: float) -> Relation:
    """Potential part promotion (CANADA, forest* parts, 1994)."""
    part = ctx.read("part", ["p_partkey"],
                    {"p_name": lambda nm: nm.startswith("forest")})
    li = ctx.read(
        "lineitem", ["l_partkey", "l_suppkey", "l_quantity"],
        {"l_shipdate": (d(1994, 1, 1), d(1995, 1, 1) - 1)},
    )
    li = hash_join(ctx, li, part, ["l_partkey"], ["p_partkey"], semi=True)
    shipped = group_by(ctx, li, ["l_partkey", "l_suppkey"],
                       {"qty": ("sum", "l_quantity")})
    ps = ctx.read("partsupp", ["ps_partkey", "ps_suppkey", "ps_availqty"])
    ps = hash_join(ctx, ps, shipped, ["ps_partkey", "ps_suppkey"],
                   ["l_partkey", "l_suppkey"])
    ps = filter_rows(ctx, ps, lambda avail, qty: avail > 0.5 * qty,
                     ["ps_availqty", "qty"])
    nation = ctx.read("nation", ["n_nationkey"],
                      {"n_name": lambda v: v == "CANADA"})
    supp = ctx.read("supplier", ["s_suppkey", "s_name", "s_address",
                                 "s_nationkey"])
    supp = hash_join(ctx, supp, nation, ["s_nationkey"], ["n_nationkey"],
                     semi=True)
    supp = hash_join(ctx, supp, ps, ["s_suppkey"], ["ps_suppkey"], semi=True)
    return order_by(ctx, select(supp, ["s_name", "s_address"]),
                    [("s_name", False)])


def q21(ctx: QueryContext, sf: float) -> Relation:
    """Suppliers who kept orders waiting (SAUDI ARABIA)."""
    nation = ctx.read("nation", ["n_nationkey"],
                      {"n_name": lambda v: v == "SAUDI ARABIA"})
    supp = ctx.read("supplier", ["s_suppkey", "s_name", "s_nationkey"])
    supp = hash_join(ctx, supp, nation, ["s_nationkey"], ["n_nationkey"],
                     semi=True)
    orders = ctx.read("orders", ["o_orderkey"],
                      {"o_orderstatus": lambda v: v == "F"})
    f_orders = set(orders["o_orderkey"])
    li = ctx.read("lineitem",
                  ["l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"])
    ctx.cpu.charge(3.0 * n_rows(li))
    suppliers_by_order: "Dict[object, set]" = {}
    late_by_order: "Dict[object, set]" = {}
    # to_list: iterate python scalars even when the vectorized executor
    # returns numpy columns (boxing per-element numpy scalars in this
    # loop costs more than the one-time conversion).
    for okey, skey, commit, receipt in zip(
        to_list(li["l_orderkey"]), to_list(li["l_suppkey"]),
        to_list(li["l_commitdate"]), to_list(li["l_receiptdate"]),
    ):
        suppliers_by_order.setdefault(okey, set()).add(skey)
        if receipt > commit:
            late_by_order.setdefault(okey, set()).add(skey)
    saudi = set(supp["s_suppkey"])
    names = dict(zip(supp["s_suppkey"], supp["s_name"]))
    counts: "Dict[str, int]" = {}
    for okey, late in late_by_order.items():
        if okey not in f_orders:
            continue
        if len(late) != 1:
            continue  # some other supplier was late too
        (only_late,) = late
        if only_late not in saudi:
            continue
        if len(suppliers_by_order[okey]) < 2:
            continue  # needs another supplier on the order
        counts[names[only_late]] = counts.get(names[only_late], 0) + 1
    out: Relation = {
        "s_name": list(counts.keys()),
        "numwait": list(counts.values()),
    }
    return order_by(ctx, out, [("numwait", True), ("s_name", False)],
                    limit=100)


def q22(ctx: QueryContext, sf: float) -> Relation:
    """Global sales opportunity (dormant wealthy customers)."""
    codes = ("13", "31", "23", "29", "30", "18", "17")
    cust = ctx.read("customer", ["c_custkey", "c_phone", "c_acctbal"])
    cust = extend(ctx, cust, "cntrycode", lambda p: p[:2], ["c_phone"])
    cust = filter_rows(ctx, cust, lambda c: c in codes, ["cntrycode"])
    positive = filter_rows(ctx, cust, lambda b: b > 0.0, ["c_acctbal"])
    avg = group_by(ctx, positive, [], {"avg_bal": ("avg", "c_acctbal")})
    threshold = avg["avg_bal"][0] if n_rows(avg) else 0.0
    rich = filter_rows(ctx, cust, lambda b: b > threshold, ["c_acctbal"])
    orders = ctx.read("orders", ["o_custkey"])
    rich = hash_join(ctx, rich, orders, ["c_custkey"], ["o_custkey"],
                     anti=True)
    agg = group_by(ctx, rich, ["cntrycode"],
                   {"numcust": ("count", None),
                    "totacctbal": ("sum", "c_acctbal")})
    return order_by(ctx, agg, [("cntrycode", False)])


QUERIES: "Dict[int, Callable[[QueryContext, float], Relation]]" = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9, 10: q10,
    11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16, 17: q17, 18: q18,
    19: q19, 20: q20, 21: q21, 22: q22,
}


def run_query(ctx: QueryContext, number: int, sf: float = 0.01) -> Relation:
    """Execute TPC-H query ``number`` in the given context."""
    try:
        query = QUERIES[number]
    except KeyError:
        raise KeyError(f"TPC-H has queries 1-22, not {number}") from None
    return query(ctx, sf)
