"""TPC-H workload: schema, deterministic generator, the 22 queries, runners.

The paper's evaluation is TPC-H at scale factor 1000 with range-partitioned
tables and HG indexes on o_custkey, n_regionkey, s_nationkey, c_nationkey,
ps_suppkey, ps_partkey and l_orderkey.  This package reproduces the same
workload at laptop scale factors: table shapes, value distributions, query
access patterns and the power/throughput run protocols all follow the spec
(simplified where the spec's text grammar does not affect I/O behaviour).
"""

from repro.tpch.schema import TPCH_SCHEMAS, tpch_schema
from repro.tpch.datagen import TpchGenerator
from repro.tpch.queries import QUERIES, run_query
from repro.tpch.runner import (
    load_tpch,
    power_run,
    throughput_streams,
)

__all__ = [
    "TPCH_SCHEMAS",
    "tpch_schema",
    "TpchGenerator",
    "QUERIES",
    "run_query",
    "load_tpch",
    "power_run",
    "throughput_streams",
]
