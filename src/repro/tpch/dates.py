"""Date handling: TPC-H dates are stored as proleptic ordinal integers."""

from __future__ import annotations

import datetime

DATE_MIN = datetime.date(1992, 1, 1).toordinal()
DATE_MAX = datetime.date(1998, 12, 31).toordinal()
CURRENT_DATE = datetime.date(1995, 6, 17).toordinal()  # dbgen's "today"


def d(year: int, month: int, day: int) -> int:
    """Ordinal of a calendar date (comparable ints, day arithmetic works)."""
    return datetime.date(year, month, day).toordinal()


def year_of(ordinal: int) -> int:
    """Calendar year of an ordinal date (used by the per-year queries)."""
    return datetime.date.fromordinal(ordinal).year


def iso(ordinal: int) -> str:
    """ISO string for reports."""
    return datetime.date.fromordinal(ordinal).isoformat()
