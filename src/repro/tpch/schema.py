"""TPC-H table schemas with the paper's partitioning and HG indexes.

High-Group indexes are created on exactly the columns the paper lists:
o_custkey, n_regionkey, s_nationkey, c_nationkey, ps_suppkey, ps_partkey
and l_orderkey.  Large tables are range-partitioned on their primary key.
"""

from __future__ import annotations

from typing import Dict

from repro.columnar.schema import ColumnSchema as C
from repro.columnar.schema import TableSchema


def _schemas(partitions: int, rows_per_page: int) -> "Dict[str, TableSchema]":
    return {
        "region": TableSchema(
            "region",
            (C("r_regionkey", "int"), C("r_name", "str"), C("r_comment", "str")),
            rows_per_page=rows_per_page,
        ),
        "nation": TableSchema(
            "nation",
            (
                C("n_nationkey", "int"),
                C("n_name", "str"),
                C("n_regionkey", "int", hg_index=True),
            ),
            rows_per_page=rows_per_page,
        ),
        "supplier": TableSchema(
            "supplier",
            (
                C("s_suppkey", "int"),
                C("s_name", "str"),
                C("s_address", "str"),
                C("s_nationkey", "int", hg_index=True),
                C("s_phone", "str"),
                C("s_acctbal", "float"),
                C("s_comment", "str"),
            ),
            partition_column="s_suppkey",
            partition_count=max(1, partitions // 2),
            rows_per_page=rows_per_page,
        ),
        "customer": TableSchema(
            "customer",
            (
                C("c_custkey", "int"),
                C("c_name", "str"),
                C("c_address", "str"),
                C("c_nationkey", "int", hg_index=True),
                C("c_phone", "str"),
                C("c_acctbal", "float"),
                C("c_mktsegment", "str"),
                C("c_comment", "str"),
            ),
            partition_column="c_custkey",
            partition_count=partitions,
            rows_per_page=rows_per_page,
        ),
        "part": TableSchema(
            "part",
            (
                C("p_partkey", "int"),
                C("p_name", "str"),
                C("p_mfgr", "str"),
                C("p_brand", "str"),
                C("p_type", "str"),
                C("p_size", "int"),
                C("p_container", "str"),
                C("p_retailprice", "float"),
            ),
            partition_column="p_partkey",
            partition_count=partitions,
            rows_per_page=rows_per_page,
        ),
        "partsupp": TableSchema(
            "partsupp",
            (
                C("ps_partkey", "int", hg_index=True),
                C("ps_suppkey", "int", hg_index=True),
                C("ps_availqty", "int"),
                C("ps_supplycost", "float"),
            ),
            partition_column="ps_partkey",
            partition_count=partitions,
            rows_per_page=rows_per_page,
        ),
        "orders": TableSchema(
            "orders",
            (
                C("o_orderkey", "int"),
                C("o_custkey", "int", hg_index=True),
                C("o_orderstatus", "str"),
                C("o_totalprice", "float"),
                C("o_orderdate", "date"),
                C("o_orderpriority", "str"),
                C("o_shippriority", "int"),
                C("o_comment", "str"),
            ),
            partition_column="o_orderkey",
            partition_count=partitions,
            rows_per_page=rows_per_page,
        ),
        "lineitem": TableSchema(
            "lineitem",
            (
                C("l_orderkey", "int", hg_index=True),
                C("l_partkey", "int"),
                C("l_suppkey", "int"),
                C("l_linenumber", "int"),
                C("l_quantity", "float"),
                C("l_extendedprice", "float"),
                C("l_discount", "float"),
                C("l_tax", "float"),
                C("l_returnflag", "str"),
                C("l_linestatus", "str"),
                C("l_shipdate", "date"),
                C("l_commitdate", "date"),
                C("l_receiptdate", "date"),
                C("l_shipinstruct", "str"),
                C("l_shipmode", "str"),
            ),
            partition_column="l_orderkey",
            partition_count=partitions,
            rows_per_page=rows_per_page,
        ),
    }


TPCH_SCHEMAS = _schemas(partitions=4, rows_per_page=2048)


def tpch_schema(partitions: int = 4,
                rows_per_page: int = 2048) -> "Dict[str, TableSchema]":
    """Schemas with custom partitioning/page fill (benchmark knobs)."""
    return _schemas(partitions, rows_per_page)
