"""Workload runners: loads, power runs and throughput streams.

Times are virtual seconds measured on the session's clock — deterministic
and host-independent.  The throughput run follows the paper's fourth
experiment: N pseudo-random permutations of the 22 queries, balanced
across the secondary nodes; a node executes its assigned streams and the
total time is the slowest node's (streams on one node share its CPU, so
serializing them on the node's clock preserves total work).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.columnar.query import QueryContext
from repro.columnar.schema import TableState
from repro.columnar.store import ColumnStore
from repro.sim.rng import DeterministicRng
from repro.tpch.datagen import TpchGenerator
from repro.tpch.queries import QUERIES, run_query
from repro.tpch.schema import tpch_schema

LOAD_ORDER = [
    "region", "nation", "supplier", "customer", "part", "partsupp",
    "orders", "lineitem",
]


def load_tpch(
    store: ColumnStore,
    scale_factor: float,
    partitions: int = 4,
    rows_per_page: int = 2048,
    seed: int = 7,
) -> "Dict[str, TableState]":
    """Create and bulk-load all eight TPC-H tables; returns their states."""
    schemas = tpch_schema(partitions, rows_per_page)
    generator = TpchGenerator(scale_factor, seed)
    tables = generator.all_tables()
    states: Dict[str, TableState] = {}
    for name in LOAD_ORDER:
        store.create_table(schemas[name])
    for name in LOAD_ORDER:
        states[name] = store.load(name, tables[name])
    return states


def load_tpch_timed(
    store: ColumnStore,
    scale_factor: float,
    partitions: int = 4,
    rows_per_page: int = 2048,
    seed: int = 7,
) -> "Tuple[Dict[str, TableState], Dict[str, float]]":
    """:func:`load_tpch`, plus per-table virtual load seconds.

    The write-path benchmarks use the breakdown to show *where* a bulk
    load spends its time (lineitem dominates) without changing what gets
    loaded: the same schemas, generator, and order as :func:`load_tpch`.
    """
    schemas = tpch_schema(partitions, rows_per_page)
    generator = TpchGenerator(scale_factor, seed)
    tables = generator.all_tables()
    states: Dict[str, TableState] = {}
    seconds: Dict[str, float] = {}
    clock = store.db.clock
    for name in LOAD_ORDER:
        store.create_table(schemas[name])
    for name in LOAD_ORDER:
        started = clock.now()
        states[name] = store.load(name, tables[name])
        seconds[name] = clock.now() - started
    return states, seconds


def power_run(
    session,
    scale_factor: float,
    query_numbers: "Optional[Sequence[int]]" = None,
    prefetch_window: int = 32,
    vectorized: "Optional[bool]" = None,
) -> "Dict[int, float]":
    """Run queries sequentially; return virtual seconds per query.

    ``vectorized`` overrides the session's ``vectorized_executor`` knob
    for this run only (None: follow the knob), so benchmarks can compare
    both executors on one loaded engine.
    """
    numbers = list(query_numbers or sorted(QUERIES))
    clock = session.clock
    tracer = getattr(session, "tracer", None)
    times: Dict[int, float] = {}
    for number in numbers:
        started = clock.now()
        span = tracer.begin(f"Q{number}", "query") if tracer is not None else None
        try:
            with QueryContext(session, prefetch_window=prefetch_window,
                              vectorized=vectorized) as ctx:
                run_query(ctx, number, scale_factor)
        finally:
            if tracer is not None:
                tracer.finish(span)
        times[number] = clock.now() - started
    return times


def make_streams(n_streams: int, seed: int = 42) -> "List[List[int]]":
    """Pseudo-random permutations of the 22 queries, one per stream."""
    rng = DeterministicRng(seed, "tpch-streams")
    streams: List[List[int]] = []
    for index in range(n_streams):
        stream = sorted(QUERIES)
        rng.substream(f"stream-{index}").shuffle(stream)
        streams.append(stream)
    return streams


def run_stream(session, scale_factor: float, stream: "Sequence[int]",
               prefetch_window: int = 32,
               vectorized: "Optional[bool]" = None) -> float:
    """Execute one query stream; return its virtual duration."""
    clock = session.clock
    started = clock.now()
    for number in stream:
        with QueryContext(session, prefetch_window=prefetch_window,
                          vectorized=vectorized) as ctx:
            run_query(ctx, number, scale_factor)
    return clock.now() - started


def throughput_streams(
    sessions: "Sequence[object]",
    scale_factor: float,
    n_streams: int = 8,
    seed: int = 42,
) -> "Tuple[float, List[float]]":
    """Throughput mode: balance streams across sessions.

    Each session must have its own clock (independent node timelines).
    Returns ``(total_time, per_node_times)`` where the total is the slowest
    node's elapsed time — nodes run concurrently.
    """
    if not sessions:
        raise ValueError("need at least one session")
    streams = make_streams(n_streams, seed)
    per_node = [0.0] * len(sessions)
    for index, stream in enumerate(streams):
        node = index % len(sessions)
        per_node[node] += run_stream(sessions[node], scale_factor, stream)
    return max(per_node), per_node
