"""Zone maps: per-page min/max used to early-prune pages during scans.

SAP IQ uses zone maps to skip pages that cannot satisfy a predicate.  We
keep one zone map entry per (column, partition, page) and persist the whole
table's zone maps as one blob object written at the end of a load.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple


class ZoneMaps:
    """Min/max (plus row count) per page for every column/partition."""

    def __init__(self) -> None:
        # (column, partition) -> list over pages of (min, max, rows)
        self._zones: Dict[Tuple[str, int], List[Tuple[object, object, int]]] = {}

    def add_page(self, column: str, partition: int,
                 lo: object, hi: object, rows: int) -> None:
        self._zones.setdefault((column, partition), []).append((lo, hi, rows))

    def pages(self, column: str, partition: int) -> "List[Tuple[object, object, int]]":
        return list(self._zones.get((column, partition), ()))

    def replace_page(self, column: str, partition: int, page_no: int,
                     lo: object, hi: object, rows: int) -> None:
        """Set (or extend to) the zone entry of one page — append path."""
        zones = self._zones.setdefault((column, partition), [])
        while len(zones) <= page_no:
            zones.append((None, None, 0))
        zones[page_no] = (lo, hi, rows)

    def prune(
        self,
        column: str,
        partition: int,
        lo: "Optional[object]",
        hi: "Optional[object]",
    ) -> "List[int]":
        """Page numbers that may contain values in ``[lo, hi]``.

        ``None`` bounds are open.  A column with no zone map entries prunes
        nothing (returns an empty list — callers treat that as "unknown").
        """
        survivors: List[int] = []
        for page_no, (page_lo, page_hi, __) in enumerate(
            self._zones.get((column, partition), ())
        ):
            if lo is not None and page_hi < lo:  # type: ignore[operator]
                continue
            if hi is not None and page_lo > hi:  # type: ignore[operator]
                continue
            survivors.append(page_no)
        return survivors

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        payload = {
            f"{column}#{partition}": zones
            for (column, partition), zones in self._zones.items()
        }
        return json.dumps(payload).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ZoneMaps":
        data = json.loads(payload.decode("utf-8"))
        maps = cls()
        for key, zones in data.items():
            column, __, partition = key.rpartition("#")
            maps._zones[(column, int(partition))] = [
                (lo, hi, int(rows)) for lo, hi, rows in zones
            ]
        return maps
