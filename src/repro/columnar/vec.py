"""Numpy kernels for the vectorized columnar executor (DESIGN.md §14).

This module is the **only** place numpy is imported.  Everything else
(`exec`, `query`, `encoding`) calls through these helpers, so a build
without numpy keeps the pure-python scalar path fully functional and
``vectorized_executor=True`` fails with one clear error instead of
scattered ImportErrors.

Every kernel is written to reproduce the scalar executor's output
*exactly* — same rows, same order, same float bits:

- group ids are numbered in order of first appearance (the scalar path's
  dict-insertion order), via :func:`group_keys`;
- grouped sums accumulate in row order through ``np.bincount``, whose C
  loop adds weights sequentially exactly like the scalar accumulator
  (pairwise summation à la ``np.sum`` would round differently);
- join output is ordered probe-row-major with matches in build insertion
  order, via :func:`join_matches` (stable argsort + searchsorted ranges);
- sorts factorize values to integer ranks so descending keys can be
  negated while keeping the stable-sort tie behaviour of
  ``list.sort(reverse=True)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    np = None  # type: ignore[assignment]


class VectorizedUnavailableError(RuntimeError):
    """``vectorized_executor=True`` on an install without numpy."""


def have_numpy() -> bool:
    """True when the numpy-backed executor can run."""
    return np is not None


def require_numpy(feature: str = "the vectorized executor"):
    """Return the numpy module or raise a clear, actionable error."""
    if np is None:
        raise VectorizedUnavailableError(
            f"{feature} requires numpy, which is not installed. "
            "Install the perf extra (pip install 'repro[perf]') or keep "
            "vectorized_executor=False to use the pure-python scalar path."
        )
    return np


# ---------------------------------------------------------------------- #
# column vectors
# ---------------------------------------------------------------------- #

def is_vector(values: object) -> bool:
    return np is not None and isinstance(values, np.ndarray)


def asarray(values):
    """Coerce a column (list or ndarray) to a 1-D ndarray.

    Homogeneous int/float/str columns get native dtypes; anything numpy
    would mangle (mixed types, nested sequences) falls back to an object
    array so values round-trip unchanged.
    """
    if isinstance(values, np.ndarray):
        return values
    values = list(values)
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError):
        arr = None
    if arr is None or arr.ndim != 1 or arr.dtype.kind not in "biufUS":
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out
    if arr.dtype.kind in "US" and not all(
        isinstance(v, str) for v in values
    ):
        # numpy stringified a mixed column; keep the original objects.
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out
    return arr


def to_list(values) -> list:
    """Materialize a column as a plain python list of python scalars."""
    if np is not None and isinstance(values, np.ndarray):
        return values.tolist()
    return list(values)


def empty() -> "np.ndarray":
    return np.empty(0, dtype=object)


# ---------------------------------------------------------------------- #
# factorization (value -> dense integer codes)
# ---------------------------------------------------------------------- #

def _rank_codes(arr) -> "Tuple[np.ndarray, int]":
    """Codes by sorted rank (not appearance); returns (codes, alphabet)."""
    uniq, inverse = np.unique(arr, return_inverse=True)
    return inverse.astype(np.int64, copy=False), len(uniq)


def _combined_codes(columns: "Sequence[np.ndarray]") -> "np.ndarray":
    """One dense code per row over a tuple of aligned key columns.

    Columns are folded pairwise with re-factorization after every fold,
    so intermediate products stay below ``n_rows**2`` and never overflow
    int64 no matter how many key columns a query groups by.
    """
    codes, __ = _rank_codes(columns[0])
    for column in columns[1:]:
        extra, alphabet = _rank_codes(column)
        codes, __ = _rank_codes(codes * alphabet + extra)
    return codes


def group_keys(
    columns: "Sequence[np.ndarray]",
) -> "Tuple[np.ndarray, np.ndarray]":
    """Factorize aligned key columns into appearance-ordered group ids.

    Returns ``(codes, first_rows)``: ``codes[i]`` is row *i*'s group id,
    groups numbered in order of first appearance (matching the scalar
    executor's dict-insertion order); ``first_rows[g]`` is the row index
    where group *g* first appears (strictly increasing).
    """
    codes = _combined_codes(columns)
    uniq, first_idx, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    order = np.argsort(first_idx, kind="stable")
    remap = np.empty(len(uniq), dtype=np.int64)
    remap[order] = np.arange(len(uniq), dtype=np.int64)
    return remap[inverse.astype(np.int64, copy=False)], first_idx[order]


def sort_codes(arr) -> "np.ndarray":
    """Integer ranks of ``arr`` (ties share a rank).

    Sorting by (possibly negated) ranks with a stable sort reproduces
    ``list.sort(key=..., reverse=...)`` for any comparable dtype.
    """
    return _rank_codes(arr)[0]


def _concat_keys(left, right) -> "np.ndarray":
    """Concatenate two key columns, upcasting to object on kind clashes."""
    if left.dtype.kind != right.dtype.kind and not (
        left.dtype.kind in "biuf" and right.dtype.kind in "biuf"
    ):
        both = np.empty(len(left) + len(right), dtype=object)
        both[: len(left)] = left
        both[len(left):] = right
        return both
    return np.concatenate([left, right])


def join_codes(
    build_columns: "Sequence[np.ndarray]",
    probe_columns: "Sequence[np.ndarray]",
) -> "Tuple[np.ndarray, np.ndarray]":
    """Factorize both sides' key columns into one shared code space."""
    n_build = len(build_columns[0]) if build_columns else 0
    codes: "Optional[np.ndarray]" = None
    for build_col, probe_col in zip(build_columns, probe_columns):
        extra, alphabet = _rank_codes(_concat_keys(build_col, probe_col))
        if codes is None:
            codes = extra
        else:
            codes, __ = _rank_codes(codes * alphabet + extra)
    assert codes is not None
    return codes[:n_build], codes[n_build:]


def join_matches(
    build_codes: "np.ndarray", probe_codes: "np.ndarray"
) -> "Tuple[np.ndarray, np.ndarray]":
    """All (probe_row, build_row) match pairs of an inner hash join.

    Ordered exactly like the scalar probe loop: probe rows ascending,
    and within one probe row the matching build rows in build insertion
    order (the stable argsort preserves it among equal keys).
    """
    sort_idx = np.argsort(build_codes, kind="stable")
    sorted_codes = build_codes[sort_idx]
    starts = np.searchsorted(sorted_codes, probe_codes, side="left")
    ends = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = ends - starts
    probe_rows = np.repeat(
        np.arange(len(probe_codes), dtype=np.int64), counts
    )
    total = int(counts.sum())
    if total == 0:
        return probe_rows, probe_rows.copy()
    bases = np.repeat(starts, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return probe_rows, sort_idx[bases + offsets]


def member_mask(codes: "np.ndarray", others: "np.ndarray") -> "np.ndarray":
    """Boolean mask: which ``codes`` appear anywhere in ``others``."""
    return np.isin(codes, others)


# ---------------------------------------------------------------------- #
# grouped aggregation
# ---------------------------------------------------------------------- #

def group_count(codes: "np.ndarray", n_groups: int) -> "np.ndarray":
    return np.bincount(codes, minlength=n_groups).astype(np.int64)


def group_sum(
    codes: "np.ndarray", values: "np.ndarray", n_groups: int
) -> "np.ndarray":
    """Per-group sums, accumulated in row order.

    ``np.bincount``'s C loop adds each weight sequentially — the same
    order and rounding as the scalar executor's ``sums[g] += value``
    (``np.sum``'s pairwise summation would differ in the last bits).
    """
    return np.bincount(codes, weights=values, minlength=n_groups)


def group_minmax(
    codes: "np.ndarray",
    values: "np.ndarray",
    n_groups: int,
    want_max: bool,
) -> "np.ndarray":
    """Per-group min (or max) for any sortable dtype."""
    order = np.argsort(values, kind="stable")
    sorted_codes = codes[order]
    if want_max:
        __, idx = np.unique(sorted_codes[::-1], return_index=True)
        rows = order[len(order) - 1 - idx]
    else:
        __, idx = np.unique(sorted_codes, return_index=True)
        rows = order[idx]
    return values[rows]


# ---------------------------------------------------------------------- #
# row-wise callables over column vectors
# ---------------------------------------------------------------------- #

def apply_rowwise(fn, series: "Sequence[np.ndarray]", count: int):
    """Apply a row-wise python callable to aligned column vectors.

    Tries one whole-column (broadcast) call first — arithmetic and
    comparison lambdas vectorize for free — and verifies the result
    against a per-row probe of the first rows before trusting it, which
    rejects accidental shape matches (e.g. ``lambda p: p[:2]`` slicing
    the *array* instead of each string).  Callables that raise or return
    non-vectors (string methods, ``in`` checks, chained comparisons)
    fall back to a per-row python loop over python scalars, preserving
    scalar-path semantics bit for bit.
    """
    lists: "Optional[List[list]]" = None
    if count:
        try:
            result = fn(*series)
        except Exception:
            result = None
        if isinstance(result, np.ndarray) and result.shape == (count,):
            probe = min(count, 3)
            lists = [column.tolist() for column in series]
            expected = [
                fn(*row) for row in zip(*(col[:probe] for col in lists))
            ]
            if all(
                bool(result[i] == expected[i]) for i in range(probe)
            ):
                return result
    if lists is None:
        lists = [column.tolist() for column in series]
    out = [fn(*row) for row in zip(*lists)]
    return asarray(out)


# ---------------------------------------------------------------------- #
# page decode
# ---------------------------------------------------------------------- #

# Beyond this width the bit-matrix product could overflow the int64
# accumulator; such pages are vanishingly rare, so they take the exact
# scalar unpack path instead.
_MAX_VECTOR_WIDTH = 57


def unpack_nbit(payload: bytes, width: int, count: int) -> "np.ndarray":
    """Vectorized n-bit unpack (see ``encoding._unpack_nbit``)."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if width > _MAX_VECTOR_WIDTH:
        from repro.columnar.encoding import _unpack_nbit

        return np.array(_unpack_nbit(payload, width, count), dtype=np.int64)
    bits = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), count=width * count
    )
    weights = np.left_shift(
        np.int64(1), np.arange(width - 1, -1, -1, dtype=np.int64)
    )
    return bits.reshape(count, width).astype(np.int64) @ weights
