"""The High-Group (HG) index: sorted values mapped to row-id range bitmaps.

SAP IQ's HG index combines B+-tree navigation with the compression of
bitmaps.  We keep the same shape: a sorted array of distinct values (the
tree's leaf level) each pointing at a range-compressed set of global row
ids.  Point and range lookups return row-id lists the scan layer converts
into page sets.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, Iterable, List, Optional, Tuple


class HgIndex:
    """value -> range-compressed row ids, with sorted-value navigation."""

    def __init__(self) -> None:
        self._ranges: Dict[object, List[Tuple[int, int]]] = {}
        self._sorted_values: "Optional[List[object]]" = None

    def add(self, value: object, row_id: int) -> None:
        ranges = self._ranges.setdefault(value, [])
        if ranges and ranges[-1][1] + 1 == row_id:
            ranges[-1] = (ranges[-1][0], row_id)
        else:
            ranges.append((row_id, row_id))
        self._sorted_values = None

    def add_rows(self, values: "Iterable[object]", first_row_id: int) -> None:
        """Bulk append of consecutive rows starting at ``first_row_id``."""
        for offset, value in enumerate(values):
            self.add(value, first_row_id + offset)

    def _values(self) -> "List[object]":
        if self._sorted_values is None:
            self._sorted_values = sorted(self._ranges)
        return self._sorted_values

    @property
    def distinct_count(self) -> int:
        return len(self._ranges)

    def lookup(self, value: object) -> "List[int]":
        """Row ids with exactly ``value``."""
        out: List[int] = []
        for lo, hi in self._ranges.get(value, ()):
            out.extend(range(lo, hi + 1))
        return out

    def lookup_range(self, lo: "Optional[object]",
                     hi: "Optional[object]") -> "List[int]":
        """Row ids whose value falls in ``[lo, hi]`` (None = open)."""
        values = self._values()
        start = 0 if lo is None else bisect.bisect_left(values, lo)
        end = len(values) if hi is None else bisect.bisect_right(values, hi)
        out: List[int] = []
        for value in values[start:end]:
            for range_lo, range_hi in self._ranges[value]:
                out.extend(range(range_lo, range_hi + 1))
        out.sort()
        return out

    def row_ranges(self, value: object) -> "List[Tuple[int, int]]":
        return list(self._ranges.get(value, ()))

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        entries = [
            [value, ranges] for value, ranges in sorted(self._ranges.items())
        ]
        return json.dumps(entries).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "HgIndex":
        index = cls()
        for value, ranges in json.loads(payload.decode("utf-8")):
            index._ranges[value] = [(int(lo), int(hi)) for lo, hi in ranges]
        return index
