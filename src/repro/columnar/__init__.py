"""Columnar storage and execution engine.

This is the SAP IQ substrate the paper's storage work plugs into: columns
are stored as pages of dictionary/n-bit encoded values (Section 1's
compression techniques), guarded by zone maps for page pruning, optionally
indexed with High-Group (HG) indexes, range partitioned, bulk loaded by a
parallel load engine, and scanned by an executor that prefetches
aggressively to mask storage latency.
"""

from repro.columnar.schema import ColumnSchema, TableSchema
from repro.columnar.store import ColumnStore
from repro.columnar.query import DecodedBatchCache, QueryContext
from repro.columnar.hgindex import HgIndex
from repro.columnar.niche import CmpIndex, DateIndex, TextIndex
from repro.columnar.vec import VectorizedUnavailableError, have_numpy
from repro.columnar.exec import (
    hash_join,
    group_by,
    order_by,
)

__all__ = [
    "ColumnSchema",
    "TableSchema",
    "ColumnStore",
    "DecodedBatchCache",
    "QueryContext",
    "HgIndex",
    "CmpIndex",
    "DateIndex",
    "TextIndex",
    "VectorizedUnavailableError",
    "have_numpy",
    "hash_join",
    "group_by",
    "order_by",
]
