"""Niche secondary indexes: DATE, CMP and TEXT (Section 1).

Alongside the High-Group index, SAP IQ ships specialty indexes:

- **DATE** — tailored for datepart predicates: rows bucketed by
  (year, month) so year/month restrictions resolve without scanning;
- **CMP** — a two-column comparison index: per row, the sign of
  ``a - b``, so predicates like ``l_commitdate < l_receiptdate`` become
  index lookups;
- **TEXT** — a word-level inverted index for contains-style predicates
  (the ``LIKE '%special%requests%'`` family).

All three store range-compressed global row ids and persist as blobs,
like the HG index.
"""

from __future__ import annotations

import datetime
import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

_WORD = re.compile(r"[A-Za-z0-9]+")


class _RowRanges:
    """Range-compressed, append-only set of ascending row ids."""

    __slots__ = ("ranges",)

    def __init__(self, ranges: "Optional[List[Tuple[int, int]]]" = None) -> None:
        self.ranges: List[Tuple[int, int]] = list(ranges or [])

    def add(self, row_id: int) -> None:
        if self.ranges and self.ranges[-1][1] + 1 == row_id:
            self.ranges[-1] = (self.ranges[-1][0], row_id)
        else:
            self.ranges.append((row_id, row_id))

    def row_ids(self) -> "List[int]":
        out: List[int] = []
        for lo, hi in self.ranges:
            out.extend(range(lo, hi + 1))
        return out

    def count(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.ranges)


class DateIndex:
    """(year, month) buckets over an ordinal-date column."""

    def __init__(self) -> None:
        self._buckets: Dict[Tuple[int, int], _RowRanges] = {}

    def add_rows(self, ordinals: "Iterable[int]", first_row_id: int) -> None:
        for offset, ordinal in enumerate(ordinals):
            when = datetime.date.fromordinal(ordinal)
            bucket = self._buckets.setdefault(
                (when.year, when.month), _RowRanges()
            )
            bucket.add(first_row_id + offset)

    def lookup_month(self, year: int, month: int) -> "List[int]":
        bucket = self._buckets.get((year, month))
        return bucket.row_ids() if bucket is not None else []

    def lookup_year(self, year: int) -> "List[int]":
        out: List[int] = []
        for (bucket_year, __), ranges in sorted(self._buckets.items()):
            if bucket_year == year:
                out.extend(ranges.row_ids())
        out.sort()
        return out

    def month_counts(self) -> "Dict[Tuple[int, int], int]":
        """Rows per (year, month) — datepart aggregates without a scan."""
        return {key: r.count() for key, r in self._buckets.items()}

    def to_bytes(self) -> bytes:
        payload = [
            [year, month, ranges.ranges]
            for (year, month), ranges in sorted(self._buckets.items())
        ]
        return json.dumps(payload).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "DateIndex":
        index = cls()
        for year, month, ranges in json.loads(payload.decode("utf-8")):
            index._buckets[(year, month)] = _RowRanges(
                [(int(lo), int(hi)) for lo, hi in ranges]
            )
        return index


class CmpIndex:
    """Sign of ``a - b`` per row for a column pair (LT / EQ / GT)."""

    LT, EQ, GT = "lt", "eq", "gt"

    def __init__(self) -> None:
        self._sets: Dict[str, _RowRanges] = {
            self.LT: _RowRanges(), self.EQ: _RowRanges(), self.GT: _RowRanges()
        }

    def add_rows(self, a_values: "Iterable[object]",
                 b_values: "Iterable[object]", first_row_id: int) -> None:
        for offset, (a, b) in enumerate(zip(a_values, b_values)):
            if a < b:  # type: ignore[operator]
                kind = self.LT
            elif a == b:
                kind = self.EQ
            else:
                kind = self.GT
            self._sets[kind].add(first_row_id + offset)

    def lookup(self, relation: str) -> "List[int]":
        """Rows where ``a <relation> b``; relation in lt/eq/gt/le/ge/ne."""
        if relation in self._sets:
            return self._sets[relation].row_ids()
        combos = {"le": (self.LT, self.EQ), "ge": (self.GT, self.EQ),
                  "ne": (self.LT, self.GT)}
        if relation not in combos:
            raise ValueError(f"unknown comparison {relation!r}")
        out: List[int] = []
        for kind in combos[relation]:
            out.extend(self._sets[kind].row_ids())
        out.sort()
        return out

    def counts(self) -> "Dict[str, int]":
        return {kind: r.count() for kind, r in self._sets.items()}

    def to_bytes(self) -> bytes:
        return json.dumps(
            {kind: r.ranges for kind, r in self._sets.items()}
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "CmpIndex":
        index = cls()
        for kind, ranges in json.loads(payload.decode("utf-8")).items():
            index._sets[kind] = _RowRanges(
                [(int(lo), int(hi)) for lo, hi in ranges]
            )
        return index


class TextIndex:
    """Word-level inverted index over a string column."""

    def __init__(self) -> None:
        self._postings: Dict[str, _RowRanges] = {}

    @staticmethod
    def tokenize(text: str) -> "List[str]":
        return [word.lower() for word in _WORD.findall(text)]

    def add_rows(self, texts: "Iterable[str]", first_row_id: int) -> None:
        for offset, text in enumerate(texts):
            row_id = first_row_id + offset
            for word in set(self.tokenize(text)):
                self._postings.setdefault(word, _RowRanges()).add(row_id)

    def lookup(self, word: str) -> "List[int]":
        posting = self._postings.get(word.lower())
        return posting.row_ids() if posting is not None else []

    def lookup_all(self, words: "Iterable[str]") -> "List[int]":
        """Rows containing *every* word (conjunctive containment)."""
        sets = [set(self.lookup(word)) for word in words]
        if not sets:
            return []
        out = set.intersection(*sets)
        return sorted(out)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def to_bytes(self) -> bytes:
        return json.dumps(
            {word: r.ranges for word, r in sorted(self._postings.items())}
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "TextIndex":
        index = cls()
        for word, ranges in json.loads(payload.decode("utf-8")).items():
            index._postings[word] = _RowRanges(
                [(int(lo), int(hi)) for lo, hi in ranges]
            )
        return index
