"""Relational operators over materialized relations.

Relations are column dictionaries (``{column: [values]}``); operators
charge CPU work to the context's :class:`~repro.sim.cpu.CpuModel` so query
times reflect both I/O (charged by the storage stack) and compute.

Every operator has two implementations sharing one signature:

- the **scalar** path (the seed's row-at-a-time python, unchanged and
  still the default) charging Amdahl CPU time, and
- the **vectorized** path (``ctx.vectorized``), where columns are numpy
  vectors and the kernels in :mod:`repro.columnar.vec` do the work in
  batches, charging CPU through the context's
  :class:`~repro.sim.cpu.MorselScheduler` so simulated time scales with
  the instance's vCPUs (DESIGN.md §14).

The vectorized kernels are constructed to reproduce the scalar output
exactly — same rows, same order, same float bits — which the equivalence
suite asserts across all 22 TPC-H queries.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.columnar import vec
from repro.columnar.query import QueryContext, Relation, n_rows

_JOIN_BUILD_OPS = 2.0
_JOIN_PROBE_OPS = 3.0
_GROUP_OPS = 3.0
_SORT_OPS = 2.0
_MAP_OPS = 2.0
_FILTER_OPS = 1.0


class ExecError(Exception):
    """Operator misuse (missing columns, ragged relations)."""


def _columns_or_raise(rel: Relation, columns: "Sequence[str]") -> None:
    for column in columns:
        if column not in rel:
            raise ExecError(
                f"relation lacks column {column!r}; has {sorted(rel)}"
            )


def _vectorized(ctx: QueryContext) -> bool:
    return bool(getattr(ctx, "vectorized", False))


def _charge(ctx: QueryContext, ops: float, rows: float) -> None:
    """Route CPU work to the morsel scheduler (vectorized) or the
    Amdahl model (scalar, byte-identical to the seed)."""
    if _vectorized(ctx):
        ctx.morsels.charge(ops, rows)
    else:
        ctx.cpu.charge(ops)


def select(rel: Relation, columns: "Sequence[str]") -> Relation:
    """Project onto ``columns``."""
    _columns_or_raise(rel, columns)
    return {column: rel[column] for column in columns}


def extend(ctx: QueryContext, rel: Relation, name: str,
           fn: "Callable[..., object]",
           inputs: "Sequence[str]") -> Relation:
    """Add a computed column ``name = fn(*input_columns)`` row-wise."""
    _columns_or_raise(rel, inputs)
    count = n_rows(rel)
    _charge(ctx, _MAP_OPS * count, count)
    if _vectorized(ctx):
        out = {column: vec.asarray(values) for column, values in rel.items()}
        series = [out[column] for column in inputs]
        out[name] = vec.apply_rowwise(fn, series, count)
        return out
    series = [rel[column] for column in inputs]
    rel = dict(rel)
    rel[name] = [fn(*values) for values in zip(*series)] if count else []
    return rel


def filter_rows(ctx: QueryContext, rel: Relation,
                fn: "Callable[..., bool]",
                inputs: "Sequence[str]") -> Relation:
    """Keep rows where ``fn(*input_columns)`` holds."""
    _columns_or_raise(rel, inputs)
    count = n_rows(rel)
    _charge(ctx, _FILTER_OPS * count, count)
    if _vectorized(ctx):
        np = vec.require_numpy()
        arrays = {column: vec.asarray(values) for column, values in rel.items()}
        series = [arrays[column] for column in inputs]
        mask = np.asarray(
            vec.apply_rowwise(fn, series, count), dtype=bool
        )
        return {column: values[mask] for column, values in arrays.items()}
    series = [rel[column] for column in inputs]
    mask = [bool(fn(*values)) for values in zip(*series)] if count else []
    return {
        column: [v for v, keep in zip(values, mask) if keep]
        for column, values in rel.items()
    }


def hash_join(
    ctx: QueryContext,
    left: Relation,
    right: Relation,
    left_on: "Sequence[str]",
    right_on: "Sequence[str]",
    semi: bool = False,
    anti: bool = False,
) -> Relation:
    """Inner hash join (or semi/anti join restricted to the left columns).

    The smaller input becomes the build side for inner joins; semi/anti
    joins always build on the right.  Join-key columns from the right side
    are dropped (they equal the left's).
    """
    if len(left_on) != len(right_on):
        raise ExecError("join key lists differ in length")
    _columns_or_raise(left, left_on)
    _columns_or_raise(right, right_on)
    if semi and anti:
        raise ExecError("a join cannot be both semi and anti")
    if _vectorized(ctx):
        return _hash_join_vec(ctx, left, right, left_on, right_on, semi, anti)

    if semi or anti:
        keys = set(zip(*(right[c] for c in right_on))) if n_rows(right) else set()
        ctx.cpu.charge(_JOIN_BUILD_OPS * n_rows(right))
        ctx.cpu.charge(_JOIN_PROBE_OPS * n_rows(left))
        left_keys = list(zip(*(left[c] for c in left_on))) if n_rows(left) else []
        if anti:
            mask = [key not in keys for key in left_keys]
        else:
            mask = [key in keys for key in left_keys]
        return {
            column: [v for v, keep in zip(values, mask) if keep]
            for column, values in left.items()
        }

    # Inner join: build on the smaller side.
    swap = n_rows(right) > n_rows(left)
    build, probe = (left, right) if swap else (right, left)
    build_on, probe_on = (left_on, right_on) if swap else (right_on, left_on)

    ctx.cpu.charge(_JOIN_BUILD_OPS * n_rows(build))
    table: Dict[Tuple[object, ...], List[int]] = {}
    build_keys = (
        list(zip(*(build[c] for c in build_on))) if n_rows(build) else []
    )
    for row, key in enumerate(build_keys):
        table.setdefault(key, []).append(row)

    ctx.cpu.charge(_JOIN_PROBE_OPS * n_rows(probe))
    probe_keys = (
        list(zip(*(probe[c] for c in probe_on))) if n_rows(probe) else []
    )
    probe_rows: List[int] = []
    build_rows: List[int] = []
    for row, key in enumerate(probe_keys):
        for match in table.get(key, ()):
            probe_rows.append(row)
            build_rows.append(match)

    out: Relation = {}
    drop = set(build_on)
    for column, values in probe.items():
        out[column] = [values[i] for i in probe_rows]
    for column, values in build.items():
        if column in drop or column in out:
            continue
        out[column] = [values[i] for i in build_rows]
    # Re-expose the join keys under the left side's names.
    for left_col, right_col in zip(left_on, right_on):
        if left_col not in out:
            source, rows = (
                (left, probe_rows if not swap else build_rows)
            )
            out[left_col] = [source[left_col][i] for i in rows]
    return out


def _hash_join_vec(
    ctx: QueryContext,
    left: Relation,
    right: Relation,
    left_on: "Sequence[str]",
    right_on: "Sequence[str]",
    semi: bool,
    anti: bool,
) -> Relation:
    """Vectorized join: factorized keys, searchsorted match expansion."""
    np = vec.require_numpy()
    left_arr = {column: vec.asarray(values) for column, values in left.items()}
    right_arr = {column: vec.asarray(values) for column, values in right.items()}

    if semi or anti:
        ctx.morsels.charge(_JOIN_BUILD_OPS * n_rows(right), n_rows(right))
        ctx.morsels.charge(_JOIN_PROBE_OPS * n_rows(left), n_rows(left))
        right_codes, left_codes = vec.join_codes(
            [right_arr[c] for c in right_on],
            [left_arr[c] for c in left_on],
        )
        mask = vec.member_mask(left_codes, right_codes)
        if anti:
            mask = ~mask
        return {column: values[mask] for column, values in left_arr.items()}

    swap = n_rows(right) > n_rows(left)
    build, probe = (left_arr, right_arr) if swap else (right_arr, left_arr)
    build_on, probe_on = (left_on, right_on) if swap else (right_on, left_on)

    ctx.morsels.charge(_JOIN_BUILD_OPS * n_rows(build), n_rows(build))
    ctx.morsels.charge(_JOIN_PROBE_OPS * n_rows(probe), n_rows(probe))
    build_codes, probe_codes = vec.join_codes(
        [build[c] for c in build_on],
        [probe[c] for c in probe_on],
    )
    probe_rows, build_rows = vec.join_matches(build_codes, probe_codes)

    out: Relation = {}
    drop = set(build_on)
    for column, values in probe.items():
        out[column] = values[probe_rows]
    for column, values in build.items():
        if column in drop or column in out:
            continue
        out[column] = values[build_rows]
    for left_col, right_col in zip(left_on, right_on):
        if left_col not in out:
            rows_idx = probe_rows if not swap else build_rows
            out[left_col] = left_arr[left_col][rows_idx]
    return out


_AGGREGATES = ("sum", "count", "avg", "min", "max")


def group_by(
    ctx: QueryContext,
    rel: Relation,
    keys: "Sequence[str]",
    aggregates: "Dict[str, Tuple[str, Optional[str]]]",
) -> Relation:
    """Hash aggregation.

    ``aggregates`` maps output names to ``(op, column)``; ``op`` is one of
    sum/count/avg/min/max (count ignores its column, which may be None).
    An empty ``keys`` produces a single global group (even over zero rows
    for count, mirroring SQL's scalar aggregates over empty inputs).
    """
    _columns_or_raise(rel, keys)
    for out_name, (op, column) in aggregates.items():
        if op not in _AGGREGATES:
            raise ExecError(f"unknown aggregate {op!r} for {out_name!r}")
        if op != "count" and column is None:
            raise ExecError(f"aggregate {out_name!r} needs a column")
        if column is not None:
            _columns_or_raise(rel, [column])
    count = n_rows(rel)
    _charge(ctx, _GROUP_OPS * count * max(1, len(aggregates)), count)
    if _vectorized(ctx):
        return _group_by_vec(rel, keys, aggregates, count)

    key_series = [rel[k] for k in keys]
    groups: "Dict[Tuple[object, ...], int]" = {}
    order: List[Tuple[object, ...]] = []
    assignments: List[int] = []
    if keys:
        for key in zip(*key_series):
            index = groups.get(key)
            if index is None:
                index = len(order)
                groups[key] = index
                order.append(key)
            assignments.append(index)
    else:
        order.append(())
        assignments = [0] * count

    out: Relation = {k: [key[i] for key in order] for i, k in enumerate(keys)}
    for out_name, (op, column) in aggregates.items():
        values = rel[column] if column is not None else None
        sums = [0.0] * len(order)
        counts = [0] * len(order)
        mins: "List[object]" = [None] * len(order)
        maxs: "List[object]" = [None] * len(order)
        for row, group in enumerate(assignments):
            counts[group] += 1
            if values is not None:
                value = values[row]
                if op in ("sum", "avg"):
                    sums[group] += value  # type: ignore[operator]
                elif op == "min":
                    if mins[group] is None or value < mins[group]:  # type: ignore[operator]
                        mins[group] = value
                elif op == "max":
                    if maxs[group] is None or value > maxs[group]:  # type: ignore[operator]
                        maxs[group] = value
        if op == "sum":
            out[out_name] = list(sums)
        elif op == "count":
            out[out_name] = list(counts)
        elif op == "avg":
            out[out_name] = [
                (s / c if c else 0.0) for s, c in zip(sums, counts)
            ]
        elif op == "min":
            out[out_name] = list(mins)
        else:
            out[out_name] = list(maxs)
    return out


def _group_by_vec(
    rel: Relation,
    keys: "Sequence[str]",
    aggregates: "Dict[str, Tuple[str, Optional[str]]]",
    count: int,
) -> Relation:
    """Vectorized aggregation: appearance-ordered codes + bincount."""
    np = vec.require_numpy()
    arrays = {column: vec.asarray(values) for column, values in rel.items()}
    if keys:
        codes, first_rows = vec.group_keys([arrays[k] for k in keys])
        n_groups = len(first_rows)
        out: Relation = {k: arrays[k][first_rows] for k in keys}
    else:
        codes = np.zeros(count, dtype=np.int64)
        n_groups = 1
        out = {}
    counts = vec.group_count(codes, n_groups)
    for out_name, (op, column) in aggregates.items():
        values = arrays[column] if column is not None else None
        if op == "count":
            out[out_name] = counts.copy()
            continue
        assert values is not None
        if count == 0:
            # Only reachable for the single global group over zero rows:
            # mirror the scalar accumulators' initial values.
            if op in ("sum",):
                out[out_name] = np.zeros(n_groups)
            elif op == "avg":
                out[out_name] = np.zeros(n_groups)
            else:
                empty = np.empty(n_groups, dtype=object)
                empty[:] = None
                out[out_name] = empty
            continue
        if op == "sum":
            out[out_name] = vec.group_sum(codes, values, n_groups)
        elif op == "avg":
            sums = vec.group_sum(codes, values, n_groups)
            out[out_name] = np.divide(
                sums,
                counts,
                out=np.zeros(n_groups),
                where=counts > 0,
            )
        else:
            out[out_name] = vec.group_minmax(
                codes, values, n_groups, want_max=(op == "max")
            )
    return out


def order_by(
    ctx: QueryContext,
    rel: Relation,
    keys: "Sequence[Tuple[str, bool]]",
    limit: "Optional[int]" = None,
) -> Relation:
    """Sort by ``(column, descending)`` keys; optionally truncate."""
    _columns_or_raise(rel, [k for k, __ in keys])
    count = n_rows(rel)
    if count:
        _charge(ctx, _SORT_OPS * count * max(1.0, math.log2(count)), count)
    if _vectorized(ctx):
        np = vec.require_numpy()
        arrays = {column: vec.asarray(values) for column, values in rel.items()}
        indexes = np.arange(count, dtype=np.int64)
        # Stable sorts composed right-to-left, on integer ranks so that
        # descending keys negate cleanly for any dtype while keeping
        # list.sort(reverse=True)'s tie order.
        for column, descending in reversed(list(keys)):
            ranks = vec.sort_codes(arrays[column][indexes])
            if descending:
                ranks = -ranks
            indexes = indexes[np.argsort(ranks, kind="stable")]
        if limit is not None:
            indexes = indexes[:limit]
        return {column: values[indexes] for column, values in arrays.items()}
    indexes = list(range(count))
    # Stable sorts composed right-to-left implement multi-key ordering.
    for column, descending in reversed(list(keys)):
        values = rel[column]
        indexes.sort(key=lambda i: values[i], reverse=descending)
    if limit is not None:
        indexes = indexes[:limit]
    return {
        column: [values[i] for i in indexes] for column, values in rel.items()
    }


def concat(left: Relation, right: Relation) -> Relation:
    """Union-all of two relations with identical columns."""
    if set(left) != set(right):
        raise ExecError("concat requires identical column sets")
    if vec.have_numpy() and any(
        vec.is_vector(values) for values in (*left.values(), *right.values())
    ):
        np = vec.require_numpy()
        return {
            column: np.concatenate(
                [vec.asarray(left[column]), vec.asarray(right[column])]
            )
            for column in left
        }
    return {column: left[column] + right[column] for column in left}


def distinct(ctx: QueryContext, rel: Relation,
             columns: "Sequence[str]") -> Relation:
    """Distinct projection."""
    _columns_or_raise(rel, columns)
    count = n_rows(rel)
    _charge(ctx, _GROUP_OPS * count, count)
    if _vectorized(ctx):
        arrays = [vec.asarray(rel[c]) for c in columns]
        if count == 0:
            return {c: arr for c, arr in zip(columns, arrays)}
        # first_rows is already in first-appearance (ascending row) order,
        # matching the scalar keep list.
        __, first_rows = vec.group_keys(arrays)
        return {c: arr[first_rows] for c, arr in zip(columns, arrays)}
    seen = set()
    keep: List[int] = []
    series = [rel[c] for c in columns]
    for i, key in enumerate(zip(*series)):
        if key not in seen:
            seen.add(key)
            keep.append(i)
    return {c: [rel[c][i] for i in keep] for c in columns}


def rows(rel: Relation, columns: "Optional[Sequence[str]]" = None):
    """Iterate a relation as tuples (testing/report helper)."""
    columns = list(columns or sorted(rel))
    series = [rel[c] for c in columns]
    return list(zip(*series)) if series and len(series[0]) else []
