"""Query context: snapshot-consistent scans with prefetching and pruning.

A :class:`QueryContext` wraps one transaction on one node (any object with
``begin/commit/rollback/open_for_read``, a ``buffer`` and a ``cpu`` — both
:class:`~repro.engine.Database` and multiplex secondaries qualify) and
provides:

- metadata access (table state, zone maps, HG indexes) with caching,
- page-pruned, prefetched column scans returning *relations*
  (``{column: [values]}`` dictionaries),
- HG-index lookups that turn predicates into row-id sets and row-id sets
  into targeted page reads.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.columnar.blob import read_blob
from repro.columnar.deletes import RowIdSet
from repro.columnar.encoding import decode_values
from repro.columnar.hgindex import HgIndex
from repro.columnar.niche import CmpIndex, DateIndex, TextIndex
from repro.columnar.schema import TableState, make_row_id, split_row_id
from repro.columnar.zonemap import ZoneMaps

Relation = Dict[str, List[object]]
RangePredicate = Tuple[object, object]  # inclusive (lo, hi); None = open
Predicate = Union[RangePredicate, Callable[[object], bool]]

_SCAN_OPS = 1.0       # per value materialized
_PREDICATE_OPS = 1.0  # per row per predicate evaluation
_DECODE_OPS = 0.5     # per value decoded from a page

ROWID = "__rowid"


def n_rows(rel: Relation) -> int:
    """Row count of a relation (0 for the empty relation)."""
    for values in rel.values():
        return len(values)
    return 0


class QueryContext:
    """One transaction's view for query execution."""

    def __init__(self, session, txn=None, prefetch_window: int = 32,
                 pipelined: "Optional[bool]" = None) -> None:
        self.session = session
        self.cpu = session.cpu
        self.buffer = session.buffer
        self.clock = session.cpu.clock
        self._own_txn = txn is None
        self.txn = txn if txn is not None else session.begin()
        self.prefetch_window = prefetch_window
        # Pipelined scans: issue batch N+1's page fetches while batch N
        # decodes, so scan virtual time approaches max(io, cpu) instead
        # of io + cpu.  Defaults to the session's `pipelined_prefetch`
        # config knob (off: the paper's serial prefetch-then-decode).
        if pipelined is None:
            config = getattr(session, "config", None)
            pipelined = bool(getattr(config, "pipelined_prefetch", False))
        self.pipelined = pipelined
        self._states: Dict[str, TableState] = {}
        self._zonemaps: Dict[str, ZoneMaps] = {}
        self._hg: Dict[Tuple[str, str], HgIndex] = {}
        self._decoded: Dict[Tuple[str, int], List[object]] = {}

    def close(self, commit: bool = True) -> None:
        """Finish the context's own transaction (no-op for borrowed ones)."""
        if self._own_txn:
            if commit:
                self.session.commit(self.txn)
            else:
                self.session.rollback(self.txn)

    def __enter__(self) -> "QueryContext":
        return self

    def __exit__(self, exc_type, *exc_info: object) -> None:
        self.close(commit=exc_type is None)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #

    def _handle(self, object_name: str):
        return self.session.open_for_read(self.txn, object_name)

    def _session_meta_cache(self) -> "Dict[Tuple[str, int], object]":
        """Parsed-metadata cache shared by all contexts on this session.

        Table metadata, zone maps and HG indexes are tiny relative to the
        buffer cache in a real deployment and stay resident across
        queries; keying by (object, committed version) keeps the cache
        MVCC-correct.
        """
        cache = getattr(self.session, "_query_meta_cache", None)
        if cache is None:
            cache = {}
            setattr(self.session, "_query_meta_cache", cache)
        return cache

    def _load_meta(self, object_name: str, parse):
        handle = self._handle(object_name)
        cache = self._session_meta_cache()
        key = (object_name, handle.version)
        cached = cache.get(key)
        if cached is None:
            payload = read_blob(self.buffer, handle,
                                window=self.prefetch_window)
            cached = parse(payload)
            # Evict entries for superseded versions of this object: each
            # commit bumps the version, and without this the cache grows
            # by one parsed copy per object per commit, forever.  (A
            # concurrent context pinned to an older snapshot just
            # re-reads — correctness comes from the version key, not
            # from retention here.)
            stale = [
                k for k in cache
                if k[0] == object_name and k[1] != handle.version
            ]
            for old in stale:
                del cache[old]
            cache[key] = cached
        return cached

    def table(self, name: str) -> TableState:
        state = self._states.get(name)
        if state is None:
            # Table metadata lives in the __meta blob object.
            state = self._load_meta(f"{name}/__meta", TableState.from_json)
            self._states[name] = state
        return state

    def zonemaps(self, table: str) -> ZoneMaps:
        maps = self._zonemaps.get(table)
        if maps is None:
            state = self.table(table)
            maps = self._load_meta(state.schema.zonemap_object(),
                                   ZoneMaps.from_bytes)
            self._zonemaps[table] = maps
        return maps

    def hg(self, table: str, column: str) -> HgIndex:
        key = (table, column)
        index = self._hg.get(key)
        if index is None:
            state = self.table(table)
            index = self._load_meta(state.schema.hg_object(column),
                                    HgIndex.from_bytes)
            self._hg[key] = index
        return index

    def deleted_rows(self, table: str) -> RowIdSet:
        """The table's tombstone set (empty for tables without one)."""
        from repro.storage.identity import CatalogError

        state = self.table(table)
        try:
            return self._load_meta(state.schema.deleted_object(),
                                   RowIdSet.from_bytes)
        except (CatalogError, KeyError):
            return RowIdSet()

    def date_index(self, table: str, column: str) -> DateIndex:
        """The column's DATE index (datepart buckets)."""
        state = self.table(table)
        return self._load_meta(state.schema.date_object(column),
                               DateIndex.from_bytes)

    def text_index(self, table: str, column: str) -> TextIndex:
        """The column's TEXT (word-inverted) index."""
        state = self.table(table)
        return self._load_meta(state.schema.text_object(column),
                               TextIndex.from_bytes)

    def cmp_index(self, table: str, first: str, second: str) -> CmpIndex:
        """The CMP index over the (first, second) column pair."""
        state = self.table(table)
        return self._load_meta(state.schema.cmp_object(first, second),
                               CmpIndex.from_bytes)

    # ------------------------------------------------------------------ #
    # page access
    # ------------------------------------------------------------------ #

    def _column_page(self, object_name: str, page_no: int) -> "List[object]":
        cache_key = (object_name, page_no)
        cached = self._decoded.get(cache_key)
        if cached is not None:
            return cached
        payload = self.buffer.get_page(self._handle(object_name), page_no)
        values = decode_values(payload)
        self.cpu.charge(_DECODE_OPS * len(values))
        self._decoded[cache_key] = values
        # A small decode cache is enough: queries touch pages in passes.
        if len(self._decoded) > 4096:
            self._decoded.clear()
        return values

    def _prefetch_pages(self, object_name: str, pages: "Sequence[int]",
                        scan_hint: bool = False) -> None:
        missing = [
            p for p in pages if (object_name, p) not in self._decoded
        ]
        if missing:
            self.buffer.prefetch(
                self._handle(object_name), missing,
                window=self.prefetch_window, scan_hint=scan_hint
            )

    def _issue_batch(self, schema, needed: "Sequence[str]", partition: int,
                     batch: "Sequence[int]") -> float:
        """Issue one pipelined batch's fetches across all needed columns.

        All columns are issued at the same virtual instant (their I/O
        overlaps); returns the latest completion time.  The shared clock
        does not move — the caller decodes the previous batch meanwhile.
        """
        now = self.clock.now()
        requests = []
        for column in needed:
            object_name = schema.column_object(column, partition)
            missing = [
                p for p in batch if (object_name, p) not in self._decoded
            ]
            if missing:
                requests.append((self._handle(object_name), missing))
        if not requests:
            return now
        # One combined issue: the loader interleaves column objects
        # page-by-page, so a batch's keys are adjacent ACROSS columns at
        # each page index — issuing them together lets the object client
        # coalesce them into ranged multi-gets.
        return self.buffer.prefetch_issue_many(requests, now, scan_hint=True)

    # ------------------------------------------------------------------ #
    # scans
    # ------------------------------------------------------------------ #

    @staticmethod
    def _range_of(predicate: Predicate) -> "Optional[RangePredicate]":
        if isinstance(predicate, tuple) and len(predicate) == 2:
            return predicate
        return None

    def _candidate_pages(
        self,
        table: str,
        partition: int,
        predicates: "Dict[str, Predicate]",
    ) -> "List[int]":
        state = self.table(table)
        pages = list(range(state.pages_in_partition(partition)))
        maps = self.zonemaps(table)
        for column, predicate in predicates.items():
            bounds = self._range_of(predicate)
            if bounds is None:
                continue
            surviving = set(maps.prune(column, partition, bounds[0], bounds[1]))
            pages = [p for p in pages if p in surviving]
        return pages

    def read(
        self,
        table: str,
        columns: "Sequence[str]",
        predicates: "Optional[Dict[str, Predicate]]" = None,
        with_rowids: bool = False,
    ) -> Relation:
        """Materialize the selected columns of the qualifying rows.

        ``predicates`` maps column names to inclusive ``(lo, hi)`` ranges
        (used for zone-map pruning *and* row filtering) or to arbitrary
        callables (row filtering only).  Predicate columns need not appear
        in ``columns``.
        """
        predicates = dict(predicates or {})
        state = self.table(table)
        schema = state.schema
        needed = list(dict.fromkeys(list(columns) + list(predicates)))
        out: Relation = {column: [] for column in columns}
        if with_rowids:
            out[ROWID] = []
        deleted = self.deleted_rows(table)
        if self.pipelined:
            self._read_pipelined(table, schema, needed, columns, predicates,
                                 deleted, out, with_rowids)
            return out
        for partition in range(schema.partition_count):
            pages = self._candidate_pages(table, partition, predicates)
            # Aggressive parallel prefetch across all needed columns.
            for column in needed:
                self._prefetch_pages(
                    schema.column_object(column, partition), pages,
                    scan_hint=True
                )
            for page_no in pages:
                self._scan_page(schema, needed, columns, predicates,
                                deleted, out, with_rowids, partition, page_no)
        return out

    def _read_pipelined(
        self,
        table: str,
        schema,
        needed: "Sequence[str]",
        columns: "Sequence[str]",
        predicates: "Dict[str, Predicate]",
        deleted: RowIdSet,
        out: Relation,
        with_rowids: bool,
    ) -> None:
        """Pipelined scan body: batch N+1's I/O overlaps batch N's decode.

        The batch plan is global across partitions — a partition whose
        candidate pages fit in one prefetch window still overlaps with
        the next partition's fetches, so the pipeline never drains at
        partition boundaries.
        """
        window = max(1, self.prefetch_window)
        page_size = getattr(getattr(self.session, "config", None),
                            "page_size", None)
        capacity = getattr(self.buffer, "capacity_bytes", None)
        if page_size and capacity:
            # Two batches are in flight at once (the one decoding and the
            # one being fetched); keep both within the buffer so the
            # pipeline never evicts frames it is about to decode.
            frames = max(1, capacity // page_size)
            window = max(1, min(window, frames // (2 * max(1, len(needed)))))
        plan: "List[Tuple[int, List[int]]]" = []
        for partition in range(schema.partition_count):
            pages = self._candidate_pages(table, partition, predicates)
            plan.extend(
                (partition, pages[i:i + window])
                for i in range(0, len(pages), window)
            )
        if not plan:
            return
        # Issue batch 0 now; each later batch is issued while its
        # predecessor decodes, so I/O and CPU overlap.
        pending = self._issue_batch(schema, needed, plan[0][0], plan[0][1])
        for index, (partition, batch) in enumerate(plan):
            # Wait for this batch's I/O (often already overlapped by the
            # previous batch's decode), then put the next batch's fetches
            # in flight before decoding.
            self.clock.advance_to(max(self.clock.now(), pending))
            if index + 1 < len(plan):
                next_partition, next_batch = plan[index + 1]
                pending = self._issue_batch(
                    schema, needed, next_partition, next_batch
                )
            decode_start = self.clock.now()
            for page_no in batch:
                self._scan_page(schema, needed, columns, predicates,
                                deleted, out, with_rowids, partition, page_no)
            self.buffer.tracer.record(
                "decode", "query", decode_start, self.clock.now(),
                table=table, partition=partition, pages=len(batch)
            )

    def _scan_page(
        self,
        schema,
        needed: "Sequence[str]",
        columns: "Sequence[str]",
        predicates: "Dict[str, Predicate]",
        deleted: RowIdSet,
        out: Relation,
        with_rowids: bool,
        partition: int,
        page_no: int,
    ) -> None:
        """Decode, filter and materialize one page into ``out``."""
        page_values = {
            column: self._column_page(
                schema.column_object(column, partition), page_no
            )
            for column in needed
        }
        count = len(next(iter(page_values.values()))) if needed else 0
        mask = self._evaluate(predicates, page_values, count)
        self.cpu.charge(_SCAN_OPS * count * max(1, len(columns)))
        base_row = make_row_id(partition, page_no * schema.rows_per_page)
        if deleted:
            for i in range(count):
                if mask[i] and (base_row + i) in deleted:
                    mask[i] = False
        for column in columns:
            values = page_values[column]
            out[column].extend(
                value for value, keep in zip(values, mask) if keep
            )
        if with_rowids:
            out[ROWID].extend(
                base_row + i for i, keep in enumerate(mask) if keep
            )

    def _evaluate(
        self,
        predicates: "Dict[str, Predicate]",
        page_values: "Dict[str, List[object]]",
        count: int,
    ) -> "List[bool]":
        mask = [True] * count
        for column, predicate in predicates.items():
            values = page_values[column]
            self.cpu.charge(_PREDICATE_OPS * count)
            bounds = self._range_of(predicate)
            if bounds is not None:
                lo, hi = bounds
                for i in range(count):
                    if not mask[i]:
                        continue
                    value = values[i]
                    if lo is not None and value < lo:  # type: ignore[operator]
                        mask[i] = False
                    elif hi is not None and value > hi:  # type: ignore[operator]
                        mask[i] = False
            else:
                check = predicate  # type: ignore[assignment]
                for i in range(count):
                    if mask[i] and not check(values[i]):  # type: ignore[operator]
                        mask[i] = False
        return mask

    # ------------------------------------------------------------------ #
    # row-id based access (HG index driven)
    # ------------------------------------------------------------------ #

    def read_rows(
        self,
        table: str,
        columns: "Sequence[str]",
        row_ids: "Sequence[int]",
    ) -> Relation:
        """Fetch specific global rows (sorted ids) — the HG index path."""
        state = self.table(table)
        schema = state.schema
        out: Relation = {column: [] for column in columns}
        if not row_ids:
            return out
        deleted = self.deleted_rows(table)
        if deleted:
            row_ids = [row_id for row_id in row_ids if row_id not in deleted]
        # Group row ids by (partition, page); ids encode the partition.
        per_page = schema.rows_per_page
        grouped: Dict[Tuple[int, int], List[int]] = {}
        for row_id in row_ids:
            partition, local = split_row_id(row_id)
            grouped.setdefault((partition, local // per_page), []).append(
                local % per_page
            )
        for column in columns:
            for (part, page_no), __ in grouped.items():
                self._prefetch_pages(
                    schema.column_object(column, part), [page_no]
                )
        for (part, page_no), offsets in grouped.items():
            for column in columns:
                values = self._column_page(
                    schema.column_object(column, part), page_no
                )
                self.cpu.charge(_SCAN_OPS * len(offsets))
                out[column].extend(values[offset] for offset in offsets)
        return out
