"""Query context: snapshot-consistent scans with prefetching and pruning.

A :class:`QueryContext` wraps one transaction on one node (any object with
``begin/commit/rollback/open_for_read``, a ``buffer`` and a ``cpu`` — both
:class:`~repro.engine.Database` and multiplex secondaries qualify) and
provides:

- metadata access (table state, zone maps, HG indexes) with caching,
- page-pruned, prefetched column scans returning *relations*
  (``{column: [values]}`` dictionaries),
- HG-index lookups that turn predicates into row-id sets and row-id sets
  into targeted page reads.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from collections import OrderedDict

from repro.columnar import vec
from repro.columnar.blob import read_blob
from repro.columnar.deletes import RowIdSet
from repro.columnar.encoding import decode_values, decode_values_np
from repro.columnar.hgindex import HgIndex
from repro.columnar.niche import CmpIndex, DateIndex, TextIndex
from repro.columnar.schema import TableState, make_row_id, split_row_id
from repro.columnar.zonemap import ZoneMaps

Relation = Dict[str, List[object]]
RangePredicate = Tuple[object, object]  # inclusive (lo, hi); None = open
Predicate = Union[RangePredicate, Callable[[object], bool]]

_SCAN_OPS = 1.0       # per value materialized
_PREDICATE_OPS = 1.0  # per row per predicate evaluation
_DECODE_OPS = 0.5     # per value decoded from a page

ROWID = "__rowid"


def n_rows(rel: Relation) -> int:
    """Row count of a relation (0 for the empty relation)."""
    for values in rel.values():
        return len(values)
    return 0


class DecodedBatchCache:
    """Byte-budget LRU of decoded column batches, shared per session.

    The vectorized executor decodes pages into immutable numpy vectors;
    caching them at the *session* level (keyed by object, committed
    version and page, so MVCC snapshots never mix) means repeated scans
    of hot columns skip both the buffer-cache page fetch and the decode
    CPU charge entirely — the zero-copy half of DESIGN.md §14.
    """

    def __init__(self, capacity_bytes: int, metrics=None) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes cannot be negative")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Tuple[str, int, int], Tuple[object, int]]" = (
            OrderedDict()
        )
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = metrics
        if metrics is not None:
            self._hit_counter = metrics.counter("decoded_cache_hits")
            self._miss_counter = metrics.counter("decoded_cache_misses")
            self._evict_counter = metrics.counter("decoded_cache_evictions")
            self._bytes_gauge = metrics.gauge("decoded_cache_bytes")
        else:
            self._hit_counter = self._miss_counter = None
            self._evict_counter = self._bytes_gauge = None

    def __contains__(self, key: "Tuple[str, int, int]") -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: "Tuple[str, int, int]"):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.increment()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self._hit_counter is not None:
            self._hit_counter.increment()
        return entry[0]

    def put(self, key: "Tuple[str, int, int]", values, nbytes: int) -> None:
        if nbytes > self.capacity_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= old[1]
        self._entries[key] = (values, nbytes)
        self.bytes_used += nbytes
        while self.bytes_used > self.capacity_bytes and self._entries:
            __, (___, dropped) = self._entries.popitem(last=False)
            self.bytes_used -= dropped
            self.evictions += 1
            if self._evict_counter is not None:
                self._evict_counter.increment()
        if self._bytes_gauge is not None:
            self._bytes_gauge.set(self.bytes_used)

    def clear(self) -> None:
        self._entries.clear()
        self.bytes_used = 0
        if self._bytes_gauge is not None:
            self._bytes_gauge.set(0)


class QueryContext:
    """One transaction's view for query execution."""

    def __init__(self, session, txn=None, prefetch_window: int = 32,
                 pipelined: "Optional[bool]" = None,
                 vectorized: "Optional[bool]" = None) -> None:
        self.session = session
        self.cpu = session.cpu
        self.buffer = session.buffer
        self.clock = session.cpu.clock
        self._own_txn = txn is None
        self.txn = txn if txn is not None else session.begin()
        self.prefetch_window = prefetch_window
        config = getattr(session, "config", None)
        # Pipelined scans: issue batch N+1's page fetches while batch N
        # decodes, so scan virtual time approaches max(io, cpu) instead
        # of io + cpu.  Defaults to the session's `pipelined_prefetch`
        # config knob (off: the paper's serial prefetch-then-decode).
        if pipelined is None:
            pipelined = bool(getattr(config, "pipelined_prefetch", False))
        self.pipelined = pipelined
        # Vectorized executor (DESIGN.md §14): numpy column vectors,
        # morsel-driven CPU charging, session-level decoded-batch cache.
        # Defaults to the `vectorized_executor` config knob; passing an
        # explicit value lets benchmarks run both modes on one engine.
        if vectorized is None:
            vectorized = bool(getattr(config, "vectorized_executor", False))
        if vectorized:
            vec.require_numpy("vectorized query execution")
        self.vectorized = vectorized
        # Vectorized scan work is accumulated across a whole read() and
        # charged as ONE morsel batch: morsels are scheduled over the
        # full scan, not per page, which is what lets a large scan fan
        # out across every vCPU (per-page batches would never exceed one
        # morsel and would serialize the scan).
        self._pending_scan_ops = 0.0
        self._pending_scan_rows = 0
        self._states: Dict[str, TableState] = {}
        self._zonemaps: Dict[str, ZoneMaps] = {}
        self._hg: Dict[Tuple[str, str], HgIndex] = {}
        self._decoded: Dict[Tuple[str, int], List[object]] = {}

    @property
    def morsels(self):
        """The session's morsel scheduler (lazy; vectorized path only)."""
        sched = getattr(self.session, "_morsel_scheduler", None)
        if sched is None:
            from repro.sim.cpu import MorselScheduler

            config = getattr(self.session, "config", None)
            sched = MorselScheduler(
                self.cpu,
                morsel_rows=getattr(config, "morsel_rows", 4096),
                metrics=getattr(self.session, "metrics", None),
            )
            setattr(self.session, "_morsel_scheduler", sched)
        return sched

    def _defer_scan_charge(self, ops: float, rows: int) -> None:
        """Bank vectorized scan work; flushed once per read()."""
        self._pending_scan_ops += ops
        self._pending_scan_rows += rows

    def _flush_scan_charges(self) -> None:
        if self._pending_scan_ops:
            self.morsels.charge(self._pending_scan_ops,
                                self._pending_scan_rows)
            self._pending_scan_ops = 0.0
            self._pending_scan_rows = 0

    def _batch_cache(self) -> DecodedBatchCache:
        """The session's decoded-batch cache (lazy; vectorized path only)."""
        cache = getattr(self.session, "_decoded_batches", None)
        if cache is None:
            config = getattr(self.session, "config", None)
            cache = DecodedBatchCache(
                getattr(config, "decoded_cache_bytes", 128 * 1024 * 1024),
                metrics=getattr(self.session, "metrics", None),
            )
            setattr(self.session, "_decoded_batches", cache)
        return cache

    def close(self, commit: bool = True) -> None:
        """Finish the context's own transaction (no-op for borrowed ones)."""
        if self.vectorized:
            self._flush_scan_charges()
        if self._own_txn:
            if commit:
                self.session.commit(self.txn)
            else:
                self.session.rollback(self.txn)

    def __enter__(self) -> "QueryContext":
        return self

    def __exit__(self, exc_type, *exc_info: object) -> None:
        self.close(commit=exc_type is None)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #

    def _handle(self, object_name: str):
        return self.session.open_for_read(self.txn, object_name)

    def _session_meta_cache(self) -> "Dict[Tuple[str, int], object]":
        """Parsed-metadata cache shared by all contexts on this session.

        Table metadata, zone maps and HG indexes are tiny relative to the
        buffer cache in a real deployment and stay resident across
        queries; keying by (object, committed version) keeps the cache
        MVCC-correct.
        """
        cache = getattr(self.session, "_query_meta_cache", None)
        if cache is None:
            cache = {}
            setattr(self.session, "_query_meta_cache", cache)
        return cache

    def _load_meta(self, object_name: str, parse):
        handle = self._handle(object_name)
        cache = self._session_meta_cache()
        key = (object_name, handle.version)
        cached = cache.get(key)
        if cached is None:
            payload = read_blob(self.buffer, handle,
                                window=self.prefetch_window)
            cached = parse(payload)
            # Evict entries for superseded versions of this object: each
            # commit bumps the version, and without this the cache grows
            # by one parsed copy per object per commit, forever.  (A
            # concurrent context pinned to an older snapshot just
            # re-reads — correctness comes from the version key, not
            # from retention here.)
            stale = [
                k for k in cache
                if k[0] == object_name and k[1] != handle.version
            ]
            for old in stale:
                del cache[old]
            cache[key] = cached
        return cached

    def table(self, name: str) -> TableState:
        state = self._states.get(name)
        if state is None:
            # Table metadata lives in the __meta blob object.
            state = self._load_meta(f"{name}/__meta", TableState.from_json)
            self._states[name] = state
        return state

    def zonemaps(self, table: str) -> ZoneMaps:
        maps = self._zonemaps.get(table)
        if maps is None:
            state = self.table(table)
            maps = self._load_meta(state.schema.zonemap_object(),
                                   ZoneMaps.from_bytes)
            self._zonemaps[table] = maps
        return maps

    def hg(self, table: str, column: str) -> HgIndex:
        key = (table, column)
        index = self._hg.get(key)
        if index is None:
            state = self.table(table)
            index = self._load_meta(state.schema.hg_object(column),
                                    HgIndex.from_bytes)
            self._hg[key] = index
        return index

    def deleted_rows(self, table: str) -> RowIdSet:
        """The table's tombstone set (empty for tables without one)."""
        from repro.storage.identity import CatalogError

        state = self.table(table)
        try:
            return self._load_meta(state.schema.deleted_object(),
                                   RowIdSet.from_bytes)
        except (CatalogError, KeyError):
            return RowIdSet()

    def date_index(self, table: str, column: str) -> DateIndex:
        """The column's DATE index (datepart buckets)."""
        state = self.table(table)
        return self._load_meta(state.schema.date_object(column),
                               DateIndex.from_bytes)

    def text_index(self, table: str, column: str) -> TextIndex:
        """The column's TEXT (word-inverted) index."""
        state = self.table(table)
        return self._load_meta(state.schema.text_object(column),
                               TextIndex.from_bytes)

    def cmp_index(self, table: str, first: str, second: str) -> CmpIndex:
        """The CMP index over the (first, second) column pair."""
        state = self.table(table)
        return self._load_meta(state.schema.cmp_object(first, second),
                               CmpIndex.from_bytes)

    # ------------------------------------------------------------------ #
    # page access
    # ------------------------------------------------------------------ #

    def _column_page(self, object_name: str, page_no: int) -> "List[object]":
        if self.vectorized:
            return self._column_page_vec(object_name, page_no)
        cache_key = (object_name, page_no)
        cached = self._decoded.get(cache_key)
        if cached is not None:
            return cached
        payload = self.buffer.get_page(self._handle(object_name), page_no)
        values = decode_values(payload)
        self.cpu.charge(_DECODE_OPS * len(values))
        self._decoded[cache_key] = values
        # A small decode cache is enough: queries touch pages in passes.
        if len(self._decoded) > 4096:
            self._decoded.clear()
        return values

    def _column_page_vec(self, object_name: str, page_no: int):
        """Decode a page into a cached, immutable numpy column vector.

        A hit skips both the buffer-cache page access and the decode CPU
        charge — the decoded batch is reused zero-copy across queries.
        """
        handle = self._handle(object_name)
        cache = self._batch_cache()
        key = (object_name, handle.version, page_no)
        values = cache.get(key)
        if values is not None:
            return values
        payload = self.buffer.get_page(handle, page_no)
        values = decode_values_np(payload)
        self._defer_scan_charge(_DECODE_OPS * len(values), len(values))
        cache.put(key, values, int(values.nbytes))
        return values

    def _have_decoded(self, object_name: str, page_no: int) -> bool:
        """Is the page already decoded (per-context or session cache)?"""
        if (object_name, page_no) in self._decoded:
            return True
        if self.vectorized:
            cache = getattr(self.session, "_decoded_batches", None)
            if cache is not None:
                handle = self._handle(object_name)
                return (object_name, handle.version, page_no) in cache
        return False

    def _prefetch_pages(self, object_name: str, pages: "Sequence[int]",
                        scan_hint: bool = False) -> None:
        missing = [
            p for p in pages if not self._have_decoded(object_name, p)
        ]
        if missing:
            self.buffer.prefetch(
                self._handle(object_name), missing,
                window=self.prefetch_window, scan_hint=scan_hint
            )

    def _issue_batch(self, schema, needed: "Sequence[str]", partition: int,
                     batch: "Sequence[int]") -> float:
        """Issue one pipelined batch's fetches across all needed columns.

        All columns are issued at the same virtual instant (their I/O
        overlaps); returns the latest completion time.  The shared clock
        does not move — the caller decodes the previous batch meanwhile.
        """
        now = self.clock.now()
        requests = []
        for column in needed:
            object_name = schema.column_object(column, partition)
            missing = [
                p for p in batch if not self._have_decoded(object_name, p)
            ]
            if missing:
                requests.append((self._handle(object_name), missing))
        if not requests:
            return now
        # One combined issue: the loader interleaves column objects
        # page-by-page, so a batch's keys are adjacent ACROSS columns at
        # each page index — issuing them together lets the object client
        # coalesce them into ranged multi-gets.
        return self.buffer.prefetch_issue_many(requests, now, scan_hint=True)

    # ------------------------------------------------------------------ #
    # scans
    # ------------------------------------------------------------------ #

    @staticmethod
    def _range_of(predicate: Predicate) -> "Optional[RangePredicate]":
        if isinstance(predicate, tuple) and len(predicate) == 2:
            return predicate
        return None

    def _candidate_pages(
        self,
        table: str,
        partition: int,
        predicates: "Dict[str, Predicate]",
    ) -> "List[int]":
        state = self.table(table)
        pages = list(range(state.pages_in_partition(partition)))
        maps = self.zonemaps(table)
        for column, predicate in predicates.items():
            bounds = self._range_of(predicate)
            if bounds is None:
                continue
            surviving = set(maps.prune(column, partition, bounds[0], bounds[1]))
            pages = [p for p in pages if p in surviving]
        return pages

    def read(
        self,
        table: str,
        columns: "Sequence[str]",
        predicates: "Optional[Dict[str, Predicate]]" = None,
        with_rowids: bool = False,
    ) -> Relation:
        """Materialize the selected columns of the qualifying rows.

        ``predicates`` maps column names to inclusive ``(lo, hi)`` ranges
        (used for zone-map pruning *and* row filtering) or to arbitrary
        callables (row filtering only).  Predicate columns need not appear
        in ``columns``.
        """
        predicates = dict(predicates or {})
        state = self.table(table)
        schema = state.schema
        needed = list(dict.fromkeys(list(columns) + list(predicates)))
        # Vectorized scans accumulate per-page array chunks per column and
        # concatenate once at the end; the scalar path extends flat lists.
        out: Relation = {column: [] for column in columns}
        if with_rowids:
            out[ROWID] = []
        deleted = self.deleted_rows(table)
        if self.pipelined:
            self._read_pipelined(table, schema, needed, columns, predicates,
                                 deleted, out, with_rowids)
        else:
            for partition in range(schema.partition_count):
                pages = self._candidate_pages(table, partition, predicates)
                # Aggressive parallel prefetch across all needed columns.
                for column in needed:
                    self._prefetch_pages(
                        schema.column_object(column, partition), pages,
                        scan_hint=True
                    )
                for page_no in pages:
                    self._scan_page(schema, needed, columns, predicates,
                                    deleted, out, with_rowids,
                                    partition, page_no)
        if self.vectorized:
            self._flush_scan_charges()
            return self._finalize_chunks(out)
        return out

    @staticmethod
    def _finalize_chunks(out: Relation) -> Relation:
        """Concatenate per-page array chunks into one vector per column."""
        np = vec.require_numpy()
        final: Relation = {}
        for column, chunks in out.items():
            if not chunks:
                final[column] = vec.empty()
            elif len(chunks) == 1:
                final[column] = chunks[0]
            else:
                final[column] = np.concatenate(chunks)
        return final

    def _read_pipelined(
        self,
        table: str,
        schema,
        needed: "Sequence[str]",
        columns: "Sequence[str]",
        predicates: "Dict[str, Predicate]",
        deleted: RowIdSet,
        out: Relation,
        with_rowids: bool,
    ) -> None:
        """Pipelined scan body: batch N+1's I/O overlaps batch N's decode.

        The batch plan is global across partitions — a partition whose
        candidate pages fit in one prefetch window still overlaps with
        the next partition's fetches, so the pipeline never drains at
        partition boundaries.
        """
        window = max(1, self.prefetch_window)
        page_size = getattr(getattr(self.session, "config", None),
                            "page_size", None)
        capacity = getattr(self.buffer, "capacity_bytes", None)
        if page_size and capacity:
            # Two batches are in flight at once (the one decoding and the
            # one being fetched); keep both within the buffer so the
            # pipeline never evicts frames it is about to decode.
            frames = max(1, capacity // page_size)
            window = max(1, min(window, frames // (2 * max(1, len(needed)))))
        plan: "List[Tuple[int, List[int]]]" = []
        for partition in range(schema.partition_count):
            pages = self._candidate_pages(table, partition, predicates)
            plan.extend(
                (partition, pages[i:i + window])
                for i in range(0, len(pages), window)
            )
        if not plan:
            return
        # Issue batch 0 now; each later batch is issued while its
        # predecessor decodes, so I/O and CPU overlap.
        pending = self._issue_batch(schema, needed, plan[0][0], plan[0][1])
        for index, (partition, batch) in enumerate(plan):
            # Wait for this batch's I/O (often already overlapped by the
            # previous batch's decode), then put the next batch's fetches
            # in flight before decoding.
            self.clock.advance_to(max(self.clock.now(), pending))
            if index + 1 < len(plan):
                next_partition, next_batch = plan[index + 1]
                pending = self._issue_batch(
                    schema, needed, next_partition, next_batch
                )
            decode_start = self.clock.now()
            for page_no in batch:
                self._scan_page(schema, needed, columns, predicates,
                                deleted, out, with_rowids, partition, page_no)
            self.buffer.tracer.record(
                "decode", "query", decode_start, self.clock.now(),
                table=table, partition=partition, pages=len(batch)
            )

    def _scan_page(
        self,
        schema,
        needed: "Sequence[str]",
        columns: "Sequence[str]",
        predicates: "Dict[str, Predicate]",
        deleted: RowIdSet,
        out: Relation,
        with_rowids: bool,
        partition: int,
        page_no: int,
    ) -> None:
        """Decode, filter and materialize one page into ``out``."""
        page_values = {
            column: self._column_page(
                schema.column_object(column, partition), page_no
            )
            for column in needed
        }
        count = len(next(iter(page_values.values()))) if needed else 0
        if self.vectorized:
            self._materialize_page_vec(schema, columns, predicates, deleted,
                                       out, with_rowids, partition, page_no,
                                       page_values, count)
            return
        mask = self._evaluate(predicates, page_values, count)
        self.cpu.charge(_SCAN_OPS * count * max(1, len(columns)))
        base_row = make_row_id(partition, page_no * schema.rows_per_page)
        if deleted:
            for i in range(count):
                if mask[i] and (base_row + i) in deleted:
                    mask[i] = False
        for column in columns:
            values = page_values[column]
            out[column].extend(
                value for value, keep in zip(values, mask) if keep
            )
        if with_rowids:
            out[ROWID].extend(
                base_row + i for i, keep in enumerate(mask) if keep
            )

    def _materialize_page_vec(
        self,
        schema,
        columns: "Sequence[str]",
        predicates: "Dict[str, Predicate]",
        deleted: RowIdSet,
        out: Relation,
        with_rowids: bool,
        partition: int,
        page_no: int,
        page_values,
        count: int,
    ) -> None:
        """Filter one decoded page with a boolean mask; append chunks."""
        np = vec.require_numpy()
        mask = self._evaluate_vec(predicates, page_values, count)
        self._defer_scan_charge(
            _SCAN_OPS * count * max(1, len(columns)), count
        )
        base_row = make_row_id(partition, page_no * schema.rows_per_page)
        if deleted:
            # Tombstones are rare; probe only the surviving rows.
            for i in np.flatnonzero(mask).tolist():
                if (base_row + i) in deleted:
                    mask[i] = False
        for column in columns:
            out[column].append(page_values[column][mask])
        if with_rowids:
            out[ROWID].append(base_row + np.flatnonzero(mask))

    def _evaluate(
        self,
        predicates: "Dict[str, Predicate]",
        page_values: "Dict[str, List[object]]",
        count: int,
    ) -> "List[bool]":
        mask = [True] * count
        for column, predicate in predicates.items():
            values = page_values[column]
            self.cpu.charge(_PREDICATE_OPS * count)
            bounds = self._range_of(predicate)
            if bounds is not None:
                lo, hi = bounds
                for i in range(count):
                    if not mask[i]:
                        continue
                    value = values[i]
                    if lo is not None and value < lo:  # type: ignore[operator]
                        mask[i] = False
                    elif hi is not None and value > hi:  # type: ignore[operator]
                        mask[i] = False
            else:
                check = predicate  # type: ignore[assignment]
                for i in range(count):
                    if mask[i] and not check(values[i]):  # type: ignore[operator]
                        mask[i] = False
        return mask

    def _evaluate_vec(self, predicates: "Dict[str, Predicate]",
                      page_values, count: int):
        """Boolean-mask predicate evaluation over column vectors."""
        np = vec.require_numpy()
        mask = np.ones(count, dtype=bool)
        for column, predicate in predicates.items():
            values = page_values[column]
            self._defer_scan_charge(_PREDICATE_OPS * count, count)
            bounds = self._range_of(predicate)
            if bounds is not None:
                lo, hi = bounds
                if lo is not None:
                    mask &= np.asarray(values >= lo, dtype=bool)
                if hi is not None:
                    mask &= np.asarray(values <= hi, dtype=bool)
            else:
                hits = vec.apply_rowwise(
                    predicate, [np.asarray(values)], count
                )
                mask &= np.asarray(hits, dtype=bool)
        return mask

    # ------------------------------------------------------------------ #
    # row-id based access (HG index driven)
    # ------------------------------------------------------------------ #

    def read_rows(
        self,
        table: str,
        columns: "Sequence[str]",
        row_ids: "Sequence[int]",
    ) -> Relation:
        """Fetch specific global rows (sorted ids) — the HG index path."""
        state = self.table(table)
        schema = state.schema
        out: Relation = {column: [] for column in columns}
        if not row_ids:
            return out
        deleted = self.deleted_rows(table)
        if deleted:
            row_ids = [row_id for row_id in row_ids if row_id not in deleted]
        # Group row ids by (partition, page); ids encode the partition.
        per_page = schema.rows_per_page
        grouped: Dict[Tuple[int, int], List[int]] = {}
        for row_id in row_ids:
            partition, local = split_row_id(row_id)
            grouped.setdefault((partition, local // per_page), []).append(
                local % per_page
            )
        for column in columns:
            for (part, page_no), __ in grouped.items():
                self._prefetch_pages(
                    schema.column_object(column, part), [page_no]
                )
        for (part, page_no), offsets in grouped.items():
            for column in columns:
                values = self._column_page(
                    schema.column_object(column, part), page_no
                )
                self.cpu.charge(_SCAN_OPS * len(offsets))
                out[column].extend(values[offset] for offset in offsets)
        if self.vectorized:
            self._flush_scan_charges()
        return out
