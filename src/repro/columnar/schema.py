"""Table and column schemas, with range partitioning metadata.

Storage-object naming convention (each maps to one catalog object):

- column data:      ``{table}/{column}#p{partition}``
- zone maps:        ``{table}/__zonemaps``
- HG index:         ``{table}/{column}__hg``
- table metadata:   ``{table}/__meta``
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

COLUMN_KINDS = ("int", "float", "str", "date")

# Global row ids encode the partition in the high bits so that appending
# rows to one partition never renumbers the others (index stability under
# incremental loads): row_id = (partition << PARTITION_SHIFT) | local_row.
PARTITION_SHIFT = 40


def make_row_id(partition: int, local_row: int) -> int:
    if local_row >= (1 << PARTITION_SHIFT):
        raise SchemaError("partition row count exceeds the row-id space")
    return (partition << PARTITION_SHIFT) | local_row


def split_row_id(row_id: int) -> "Tuple[int, int]":
    """(partition, local_row) of a global row id."""
    return row_id >> PARTITION_SHIFT, row_id & ((1 << PARTITION_SHIFT) - 1)


class SchemaError(Exception):
    """Invalid schema definitions."""


@dataclass(frozen=True)
class ColumnSchema:
    """One column: name, kind, optional secondary indexes.

    Besides the High-Group index, the niche indexes of Section 1 are
    available: DATE (datepart buckets, ``date`` columns only) and TEXT
    (word-level inverted index, ``str`` columns only).
    """

    name: str
    kind: str
    hg_index: bool = False
    date_index: bool = False
    text_index: bool = False

    def __post_init__(self) -> None:
        if self.kind not in COLUMN_KINDS:
            raise SchemaError(
                f"column {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {COLUMN_KINDS})"
            )
        if self.date_index and self.kind != "date":
            raise SchemaError(
                f"column {self.name!r}: DATE indexes need a date column"
            )
        if self.text_index and self.kind != "str":
            raise SchemaError(
                f"column {self.name!r}: TEXT indexes need a str column"
            )


@dataclass(frozen=True)
class TableSchema:
    """A range-partitioned columnar table."""

    name: str
    columns: "Sequence[ColumnSchema]"
    partition_column: "Optional[str]" = None
    partition_count: int = 1
    rows_per_page: int = 2048
    # CMP indexes: pairs of columns whose row-wise comparison is indexed.
    cmp_indexes: "Sequence[Tuple[str, str]]" = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        for first, second in self.cmp_indexes:
            if first not in names or second not in names:
                raise SchemaError(
                    f"table {self.name!r}: CMP index columns "
                    f"({first!r}, {second!r}) must exist"
                )
        if self.partition_count < 1:
            raise SchemaError("partition count must be at least 1")
        if self.partition_count > 1 and self.partition_column is None:
            raise SchemaError(
                f"table {self.name!r}: multiple partitions need a "
                "partition column"
            )
        if self.partition_column is not None and self.partition_column not in names:
            raise SchemaError(
                f"table {self.name!r}: partition column "
                f"{self.partition_column!r} is not a column"
            )
        if self.rows_per_page < 1:
            raise SchemaError("rows_per_page must be positive")

    def column(self, name: str) -> ColumnSchema:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> "List[str]":
        return [c.name for c in self.columns]

    def indexed_columns(self) -> "List[str]":
        return [c.name for c in self.columns if c.hg_index]

    def date_indexed_columns(self) -> "List[str]":
        return [c.name for c in self.columns if c.date_index]

    def text_indexed_columns(self) -> "List[str]":
        return [c.name for c in self.columns if c.text_index]

    # ------------------------------------------------------------------ #
    # storage object names
    # ------------------------------------------------------------------ #

    def column_object(self, column: str, partition: int) -> str:
        self.column(column)
        if not 0 <= partition < self.partition_count:
            raise SchemaError(
                f"partition {partition} out of range for {self.name!r}"
            )
        return f"{self.name}/{column}#p{partition}"

    def zonemap_object(self) -> str:
        return f"{self.name}/__zonemaps"

    def hg_object(self, column: str) -> str:
        if column not in self.indexed_columns():
            raise SchemaError(
                f"column {column!r} of {self.name!r} has no HG index"
            )
        return f"{self.name}/{column}__hg"

    def date_object(self, column: str) -> str:
        if column not in self.date_indexed_columns():
            raise SchemaError(
                f"column {column!r} of {self.name!r} has no DATE index"
            )
        return f"{self.name}/{column}__date"

    def text_object(self, column: str) -> str:
        if column not in self.text_indexed_columns():
            raise SchemaError(
                f"column {column!r} of {self.name!r} has no TEXT index"
            )
        return f"{self.name}/{column}__text"

    def cmp_object(self, first: str, second: str) -> str:
        if (first, second) not in tuple(self.cmp_indexes):
            raise SchemaError(
                f"table {self.name!r} has no CMP index on "
                f"({first!r}, {second!r})"
            )
        return f"{self.name}/{first}__cmp__{second}"

    def deleted_object(self) -> str:
        return f"{self.name}/__deleted"

    def meta_object(self) -> str:
        return f"{self.name}/__meta"

    # ------------------------------------------------------------------ #
    # serialization (persisted in the __meta object)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> "Dict[str, object]":
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "kind": c.kind,
                    "hg_index": c.hg_index,
                    "date_index": c.date_index,
                    "text_index": c.text_index,
                }
                for c in self.columns
            ],
            "partition_column": self.partition_column,
            "partition_count": self.partition_count,
            "rows_per_page": self.rows_per_page,
            "cmp_indexes": [list(pair) for pair in self.cmp_indexes],
        }

    @classmethod
    def from_dict(cls, payload: "Dict[str, object]") -> "TableSchema":
        return cls(
            name=str(payload["name"]),
            columns=tuple(
                ColumnSchema(
                    c["name"], c["kind"], c["hg_index"],  # type: ignore[index]
                    c.get("date_index", False),  # type: ignore[union-attr]
                    c.get("text_index", False),  # type: ignore[union-attr]
                )
                for c in payload["columns"]  # type: ignore[union-attr]
            ),
            partition_column=payload["partition_column"],  # type: ignore[arg-type]
            partition_count=int(payload["partition_count"]),  # type: ignore[arg-type]
            rows_per_page=int(payload["rows_per_page"]),  # type: ignore[arg-type]
            cmp_indexes=tuple(
                (pair[0], pair[1])
                for pair in payload.get("cmp_indexes", [])  # type: ignore[union-attr]
            ),
        )


@dataclass
class TableState:
    """Load-time facts about a table: row counts and partition bounds."""

    schema: TableSchema
    partition_rows: "List[int]" = field(default_factory=list)
    partition_bounds: "List[object]" = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        return sum(self.partition_rows)

    def pages_in_partition(self, partition: int) -> int:
        rows = self.partition_rows[partition]
        per_page = self.schema.rows_per_page
        return (rows + per_page - 1) // per_page

    def to_json(self) -> bytes:
        return json.dumps(
            {
                "schema": self.schema.to_dict(),
                "partition_rows": self.partition_rows,
                "partition_bounds": self.partition_bounds,
            }
        ).encode("utf-8")

    @classmethod
    def from_json(cls, payload: bytes) -> "TableState":
        data = json.loads(payload.decode("utf-8"))
        return cls(
            schema=TableSchema.from_dict(data["schema"]),
            partition_rows=list(data["partition_rows"]),
            partition_bounds=list(data["partition_bounds"]),
        )
