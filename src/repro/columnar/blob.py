"""Helpers to store arbitrary byte blobs across pages of a storage object.

Metadata structures (zone maps, HG indexes, table meta) serialize to one
blob which is chunked into page-sized pieces; page 0 carries a tiny header
with the chunk count so readers know how many pages to fetch (and can
prefetch them in parallel).
"""

from __future__ import annotations

import struct
from typing import List

_HEADER = struct.Struct(">I")


def write_blob(buffer, handle, payload: bytes, page_size: int) -> int:
    """Write ``payload`` into ``handle`` as chunked pages; returns pages."""
    chunk_size = page_size - _HEADER.size
    chunks: "List[bytes]" = [
        payload[i:i + chunk_size] for i in range(0, len(payload), chunk_size)
    ] or [b""]
    for page_no, chunk in enumerate(chunks):
        buffer.write_page(handle, page_no, _HEADER.pack(len(chunks)) + chunk)
    return len(chunks)


def read_blob(buffer, handle, window: int = 32, scan: bool = False) -> bytes:
    """Read back a blob written by :func:`write_blob`.

    ``scan`` marks the reads as part of a bulk scan so scan-resistant
    cache policies keep them out of the protected set; metadata blobs
    (the common case) stay hot and leave it False.
    """
    first = buffer.get_page(handle, 0)
    (count,) = _HEADER.unpack_from(first)
    if count > 1:
        buffer.prefetch(handle, list(range(1, count)), window=window,
                        scan_hint=scan)
    parts = [first[_HEADER.size:]]
    for page_no in range(1, count):
        parts.append(buffer.get_page(handle, page_no)[_HEADER.size:])
    return b"".join(parts)
