"""The column store: DDL and the parallel load engine.

Loading follows SAP IQ's shape: input is read from an S3 bucket through the
instance NIC (sharing bandwidth with dbspace I/O — footnote 3 of the
paper), values are encoded into n-bit/dictionary pages, zone maps and HG
indexes are built as pages are produced, and everything is flushed through
the buffer manager inside one transaction whose commit makes the load
durable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.columnar.blob import write_blob
from repro.columnar.deletes import RowIdSet
from repro.columnar.encoding import decode_values, encode_values
from repro.columnar.hgindex import HgIndex
from repro.columnar.niche import CmpIndex, DateIndex, TextIndex
from repro.columnar.schema import (
    SchemaError,
    TableSchema,
    TableState,
    make_row_id,
)
from repro.columnar.zonemap import ZoneMaps
from repro.engine import Database
from repro.sim.metrics import MetricsRegistry

# CPU work units per value for load-path operations.
_ENCODE_OPS = 2.0
_INDEX_OPS = 2.0
_ROUTE_OPS = 0.5


class ColumnStore:
    """Columnar tables on top of a :class:`~repro.engine.Database`."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.metrics = MetricsRegistry()
        self._schemas: Dict[str, TableSchema] = {}
        self._dbspaces: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #

    def create_table(self, schema: TableSchema, dbspace: str = "user") -> None:
        """Register every storage object the table needs."""
        if schema.name in self._schemas:
            raise SchemaError(f"table {schema.name!r} already exists")
        for partition in range(schema.partition_count):
            for column in schema.column_names():
                self.db.create_object(
                    schema.column_object(column, partition), dbspace
                )
        self.db.create_object(schema.zonemap_object(), dbspace)
        for column in schema.indexed_columns():
            self.db.create_object(schema.hg_object(column), dbspace)
        for column in schema.date_indexed_columns():
            self.db.create_object(schema.date_object(column), dbspace)
        for column in schema.text_indexed_columns():
            self.db.create_object(schema.text_object(column), dbspace)
        for first, second in schema.cmp_indexes:
            self.db.create_object(schema.cmp_object(first, second), dbspace)
        self.db.create_object(schema.deleted_object(), dbspace)
        self.db.create_object(schema.meta_object(), dbspace)
        self._schemas[schema.name] = schema
        self._dbspaces[schema.name] = dbspace

    def schema(self, name: str) -> TableSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def table_names(self) -> "List[str]":
        return sorted(self._schemas)

    # ------------------------------------------------------------------ #
    # load engine
    # ------------------------------------------------------------------ #

    @staticmethod
    def _input_bytes(rows: "Sequence[Tuple[object, ...]]") -> int:
        """Approximate raw (CSV) input size of the rows."""
        if not rows:
            return 0
        sample = rows[: min(len(rows), 64)]
        # Column-major over the sample chunk: stringify each column once
        # instead of re-walking every row tuple (the per-row generator
        # pair dominated load-time profiling).  The total is the same
        # integer either way, so the estimate is bit-identical.
        total = sum(
            sum(len(str(value)) + 1 for value in column)
            for column in zip(*sample)
        )
        avg = total / len(sample)
        return int(avg * len(rows))

    @staticmethod
    def _fit_rows_per_page(
        schema: TableSchema,
        rows: "Sequence[Tuple[object, ...]]",
        page_size: int,
    ) -> TableSchema:
        """Shrink rows_per_page until encoded column pages fit a page.

        The fitted value is persisted with the table metadata, so readers
        use the effective page fill automatically.
        """
        if not rows:
            return schema
        effective = schema.rows_per_page
        names = schema.column_names()
        budget = int(page_size * 0.75)  # headroom for later, wider chunks
        while effective > 1:
            probe = rows[:effective]
            worst = max(
                len(
                    encode_values(
                        schema.column(column).kind,
                        [row[i] for row in probe],
                    )
                )
                for i, column in enumerate(names)
            )
            if worst <= budget:
                break
            effective //= 2
        if effective == schema.rows_per_page:
            return schema
        return TableSchema(
            name=schema.name,
            columns=schema.columns,
            partition_column=schema.partition_column,
            partition_count=schema.partition_count,
            rows_per_page=effective,
            cmp_indexes=schema.cmp_indexes,
        )

    def _partition_bounds(
        self, schema: TableSchema, rows: "Sequence[Tuple[object, ...]]"
    ) -> "List[object]":
        """Upper bounds (exclusive of the last) for range partitioning."""
        if schema.partition_count == 1:
            return []
        key_index = schema.column_names().index(schema.partition_column)  # type: ignore[arg-type]
        keys = sorted(row[key_index] for row in rows)
        bounds: List[object] = []
        for i in range(1, schema.partition_count):
            bounds.append(keys[(i * len(keys)) // schema.partition_count])
        return bounds

    @staticmethod
    def _route(value: object, bounds: "List[object]") -> int:
        partition = 0
        for bound in bounds:
            if value < bound:  # type: ignore[operator]
                return partition
            partition += 1
        return partition

    def load(
        self,
        table: str,
        rows: "Iterable[Tuple[object, ...]]",
        txn=None,
    ) -> TableState:
        """Bulk load ``rows`` (tuples in schema column order).

        Runs inside ``txn`` (a fresh transaction is created and committed
        when omitted).  Returns the resulting :class:`TableState`.
        """
        schema = self.schema(table)
        materialized = list(rows)
        own_txn = txn is None
        if own_txn:
            txn = self.db.begin()
        cpu = self.db.cpu
        clock = self.db.clock
        page_size = self.db.page_size_for(self._dbspaces.get(table, "user"))
        schema = self._fit_rows_per_page(schema, materialized, page_size)

        # Input arrives from an S3 staging bucket through the same NIC the
        # dbspace uses; reserve the bandwidth so loads are network-visible.
        input_bytes = self._input_bytes(materialized)
        if input_bytes:
            self.metrics.series("input_bytes").record(clock.now(), input_bytes)
            __, input_done = self.db.nic.request(clock.now(), float(input_bytes))
            # Input streaming overlaps with processing: the clock does not
            # wait for it here, but the NIC reservation delays dbspace I/O.

        # Route rows to partitions.
        bounds = self._partition_bounds(schema, materialized)
        partitions: "List[List[Tuple[object, ...]]]" = [
            [] for __ in range(schema.partition_count)
        ]
        if schema.partition_count == 1:
            partitions[0] = materialized
        else:
            key_index = schema.column_names().index(schema.partition_column)  # type: ignore[arg-type]
            cpu.charge(_ROUTE_OPS * len(materialized))
            for row in materialized:
                partitions[self._route(row[key_index], bounds)].append(row)

        zonemaps = ZoneMaps()
        indexes = {column: HgIndex() for column in schema.indexed_columns()}
        date_indexes = {
            column: DateIndex() for column in schema.date_indexed_columns()
        }
        text_indexes = {
            column: TextIndex() for column in schema.text_indexed_columns()
        }
        cmp_indexes = {pair: CmpIndex() for pair in schema.cmp_indexes}
        column_names = schema.column_names()
        per_page = schema.rows_per_page
        partition_rows: List[int] = []
        global_row = 0

        for partition, part_rows in enumerate(partitions):
            partition_rows.append(len(part_rows))
            handles = {
                column: self.db.open_for_write(
                    txn, schema.column_object(column, partition)
                )
                for column in column_names
            }
            for page_no in range(0, (len(part_rows) + per_page - 1) // per_page):
                chunk = part_rows[page_no * per_page:(page_no + 1) * per_page]
                for col_index, column in enumerate(column_names):
                    values = [row[col_index] for row in chunk]
                    cpu.charge(_ENCODE_OPS * len(values))
                    payload = encode_values(schema.column(column).kind, values)
                    self.db.buffer.write_page(handles[column], page_no, payload)
                    zonemaps.add_page(
                        column, partition, min(values), max(values), len(values)
                    )
                    base_row = make_row_id(partition, page_no * per_page)
                    if column in indexes:
                        cpu.charge(_INDEX_OPS * len(values))
                        indexes[column].add_rows(values, base_row)
                    if column in date_indexes:
                        cpu.charge(_INDEX_OPS * len(values))
                        date_indexes[column].add_rows(values, base_row)
                    if column in text_indexes:
                        cpu.charge(4 * _INDEX_OPS * len(values))
                        text_indexes[column].add_rows(values, base_row)
                for (first, second), cmp_index in cmp_indexes.items():
                    cpu.charge(_INDEX_OPS * len(chunk))
                    first_i = column_names.index(first)
                    second_i = column_names.index(second)
                    cmp_index.add_rows(
                        [row[first_i] for row in chunk],
                        [row[second_i] for row in chunk],
                        make_row_id(partition, page_no * per_page),
                    )

        # Persist metadata blobs: zone maps, HG indexes, table state.
        zm_handle = self.db.open_for_write(txn, schema.zonemap_object())
        write_blob(self.db.buffer, zm_handle, zonemaps.to_bytes(), page_size)
        for column, index in indexes.items():
            hg_handle = self.db.open_for_write(txn, schema.hg_object(column))
            write_blob(self.db.buffer, hg_handle, index.to_bytes(), page_size)
        for column, date_index in date_indexes.items():
            handle = self.db.open_for_write(txn, schema.date_object(column))
            write_blob(self.db.buffer, handle, date_index.to_bytes(), page_size)
        for column, text_index in text_indexes.items():
            handle = self.db.open_for_write(txn, schema.text_object(column))
            write_blob(self.db.buffer, handle, text_index.to_bytes(), page_size)
        for (first, second), cmp_index in cmp_indexes.items():
            handle = self.db.open_for_write(
                txn, schema.cmp_object(first, second)
            )
            write_blob(self.db.buffer, handle, cmp_index.to_bytes(), page_size)
        deleted_handle = self.db.open_for_write(txn, schema.deleted_object())
        write_blob(self.db.buffer, deleted_handle, RowIdSet().to_bytes(),
                   page_size)
        state = TableState(
            schema=schema,
            partition_rows=partition_rows,
            partition_bounds=bounds,
        )
        meta_handle = self.db.open_for_write(txn, schema.meta_object())
        write_blob(self.db.buffer, meta_handle, state.to_json(), page_size)

        if own_txn:
            self.db.commit(txn)
        return state

    # ------------------------------------------------------------------ #
    # deletes (tombstones)
    # ------------------------------------------------------------------ #

    def delete_rows(self, table: str, row_ids: "Iterable[int]",
                    txn=None) -> int:
        """Tombstone rows by global id; returns how many were newly deleted.

        Pages stay immutable (never-write-twice); scans mask the deleted
        rows.  Find row ids through scans (``with_rowids=True``) or through
        any secondary index.
        """
        from repro.columnar.blob import read_blob

        schema = self.schema(table)
        own_txn = txn is None
        if own_txn:
            txn = self.db.begin()
        handle = self.db.open_for_read(txn, schema.deleted_object())
        deleted = RowIdSet.from_bytes(read_blob(self.db.buffer, handle))
        added = deleted.add_many(row_ids)
        if added:
            page_size = self.db.page_size_for(
                self._dbspaces.get(table, "user")
            )
            out_handle = self.db.open_for_write(txn, schema.deleted_object())
            write_blob(self.db.buffer, out_handle, deleted.to_bytes(),
                       page_size)
        if own_txn:
            self.db.commit(txn)
        return added

    # ------------------------------------------------------------------ #
    # incremental appends (trickle loads / TPC-H refresh functions)
    # ------------------------------------------------------------------ #

    def append(
        self,
        table: str,
        rows: "Iterable[Tuple[object, ...]]",
        txn=None,
    ) -> TableState:
        """Append rows to an already-loaded table.

        Rows are routed with the table's existing partition bounds, each
        partition's last (partial) page is rewritten and new pages are
        added; zone maps and every secondary index are extended in place.
        Partition-encoded row ids keep existing index entries stable.
        """
        from repro.columnar.blob import read_blob
        from repro.columnar.schema import make_row_id

        new_rows = list(rows)
        own_txn = txn is None
        if own_txn:
            txn = self.db.begin()
        cpu = self.db.cpu
        page_size = self.db.page_size_for(self._dbspaces.get(table, "user"))

        def load_blob(object_name: str):
            handle = self.db.open_for_read(txn, object_name)
            return read_blob(self.db.buffer, handle)

        state = TableState.from_json(load_blob(f"{table}/__meta"))
        schema = state.schema  # carries the effective rows_per_page
        per_page = schema.rows_per_page
        column_names = schema.column_names()
        if new_rows:
            input_bytes = self._input_bytes(new_rows)
            self.metrics.series("input_bytes").record(
                self.db.clock.now(), input_bytes
            )
            self.db.nic.request(self.db.clock.now(), float(input_bytes))

        zonemaps = ZoneMaps.from_bytes(load_blob(schema.zonemap_object()))
        indexes = {
            column: HgIndex.from_bytes(load_blob(schema.hg_object(column)))
            for column in schema.indexed_columns()
        }
        date_indexes = {
            column: DateIndex.from_bytes(load_blob(schema.date_object(column)))
            for column in schema.date_indexed_columns()
        }
        text_indexes = {
            column: TextIndex.from_bytes(load_blob(schema.text_object(column)))
            for column in schema.text_indexed_columns()
        }
        cmp_indexes = {
            (a, b): CmpIndex.from_bytes(load_blob(schema.cmp_object(a, b)))
            for a, b in schema.cmp_indexes
        }

        # Route with the frozen bounds from the original load.
        per_partition: "Dict[int, List[Tuple[object, ...]]]" = {}
        if schema.partition_count == 1:
            per_partition[0] = new_rows
        else:
            key_index = column_names.index(schema.partition_column)  # type: ignore[arg-type]
            cpu.charge(_ROUTE_OPS * len(new_rows))
            for row in new_rows:
                partition = self._route(
                    row[key_index], list(state.partition_bounds)
                )
                per_partition.setdefault(partition, []).append(row)

        for partition, part_rows in sorted(per_partition.items()):
            if not part_rows:
                continue
            existing = state.partition_rows[partition]
            handles = {
                column: self.db.open_for_write(
                    txn, schema.column_object(column, partition)
                )
                for column in column_names
            }
            # Merge into the last partial page, then write whole new pages.
            tail_rows: "List[Tuple[object, ...]]" = []
            tail_page = existing // per_page
            tail_offset = existing % per_page
            if tail_offset:
                decoded = {
                    column: decode_values(
                        self.db.buffer.get_page(handles[column], tail_page)
                    )
                    for column in column_names
                }
                tail_rows = list(
                    zip(*(decoded[column] for column in column_names))
                )
            combined = tail_rows + part_rows
            for index_offset in range(0, len(combined), per_page):
                chunk = combined[index_offset:index_offset + per_page]
                page_no = tail_page + index_offset // per_page
                base_row = make_row_id(partition, page_no * per_page)
                for col_index, column in enumerate(column_names):
                    values = [row[col_index] for row in chunk]
                    cpu.charge(_ENCODE_OPS * len(values))
                    payload = encode_values(schema.column(column).kind, values)
                    if len(payload) > page_size:
                        raise SchemaError(
                            f"appended page for {column!r} exceeds the page "
                            "size; append smaller batches"
                        )
                    self.db.buffer.write_page(handles[column], page_no, payload)
                    zonemaps.replace_page(
                        column, partition, page_no,
                        min(values), max(values), len(values),
                    )
                    # Indexes: only the genuinely new rows get entries (the
                    # rewritten tail rows already have them).
                    fresh_start = tail_offset if index_offset == 0 else 0
                    fresh_values = values[fresh_start:]
                    fresh_base = base_row + fresh_start
                    if column in indexes and fresh_values:
                        cpu.charge(_INDEX_OPS * len(fresh_values))
                        indexes[column].add_rows(fresh_values, fresh_base)
                    if column in date_indexes and fresh_values:
                        date_indexes[column].add_rows(fresh_values, fresh_base)
                    if column in text_indexes and fresh_values:
                        text_indexes[column].add_rows(fresh_values, fresh_base)
                fresh_start = tail_offset if index_offset == 0 else 0
                fresh_chunk = chunk[fresh_start:]
                for (first, second), cmp_index in cmp_indexes.items():
                    if not fresh_chunk:
                        continue
                    first_i = column_names.index(first)
                    second_i = column_names.index(second)
                    cmp_index.add_rows(
                        [row[first_i] for row in fresh_chunk],
                        [row[second_i] for row in fresh_chunk],
                        base_row + fresh_start,
                    )
            state.partition_rows[partition] = existing + len(part_rows)

        # Rewrite metadata blobs.
        buffer = self.db.buffer
        zm_handle = self.db.open_for_write(txn, schema.zonemap_object())
        write_blob(buffer, zm_handle, zonemaps.to_bytes(), page_size)
        for column, index in indexes.items():
            handle = self.db.open_for_write(txn, schema.hg_object(column))
            write_blob(buffer, handle, index.to_bytes(), page_size)
        for column, date_index in date_indexes.items():
            handle = self.db.open_for_write(txn, schema.date_object(column))
            write_blob(buffer, handle, date_index.to_bytes(), page_size)
        for column, text_index in text_indexes.items():
            handle = self.db.open_for_write(txn, schema.text_object(column))
            write_blob(buffer, handle, text_index.to_bytes(), page_size)
        for pair, cmp_index in cmp_indexes.items():
            handle = self.db.open_for_write(txn, schema.cmp_object(*pair))
            write_blob(buffer, handle, cmp_index.to_bytes(), page_size)
        meta_handle = self.db.open_for_write(txn, schema.meta_object())
        write_blob(buffer, meta_handle, state.to_json(), page_size)

        if own_txn:
            self.db.commit(txn)
        return state

    # ------------------------------------------------------------------ #
    # moving data between storage providers
    # ------------------------------------------------------------------ #

    def move_table(self, table: str, target_dbspace: str) -> int:
        """Re-home every storage object of a table onto another dbspace.

        The paper's multi-provider story: "users have the ability to ...
        move data between different storage providers as needed."  Each
        object is rewritten page by page inside one transaction; at commit
        the old dbspace's pages enter the RF bitmaps for garbage
        collection.  Returns the number of pages copied.
        """
        schema = self.schema(table)
        objects: "List[str]" = []
        for partition in range(schema.partition_count):
            objects.extend(
                schema.column_object(column, partition)
                for column in schema.column_names()
            )
        objects.append(schema.zonemap_object())
        objects.extend(
            schema.hg_object(column) for column in schema.indexed_columns()
        )
        objects.extend(
            schema.date_object(column)
            for column in schema.date_indexed_columns()
        )
        objects.extend(
            schema.text_object(column)
            for column in schema.text_indexed_columns()
        )
        objects.extend(
            schema.cmp_object(first, second)
            for first, second in schema.cmp_indexes
        )
        objects.append(schema.deleted_object())
        objects.append(schema.meta_object())

        txn = self.db.begin()
        copied = 0
        for object_name in objects:
            source = self.db.open_for_read(txn, object_name)
            target = self.db.txn_manager.open_for_rewrite(
                txn, object_name, target_dbspace
            )
            for page_no in range(source.page_count):
                data = self.db.buffer.get_page(source, page_no)
                self.db.buffer.write_page(target, page_no, data)
                copied += 1
        self.db.commit(txn)
        self._dbspaces[table] = target_dbspace
        return copied
