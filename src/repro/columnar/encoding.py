"""Column page encodings: n-bit packing and dictionary compression.

SAP IQ compresses columnar data with dictionary encoding plus the *n-bit
representation* (values stored in just enough bits), then applies page-level
compression on top.  This module implements the inner layer:

- **integers**: frame-of-reference + n-bit packing — the page stores the
  minimum and each value's delta in ``ceil(log2(max-min+1))`` bits;
- **floats**: raw IEEE doubles (page-level zlib still helps);
- **strings**: a page-local dictionary of distinct values with n-bit codes.

Every encoder returns ``bytes`` and every decoder returns the exact value
list, so encode/decode is a strict round trip (property-tested).
"""

from __future__ import annotations

import struct
from typing import List, Sequence

INT_TAG = b"I"
FLOAT_TAG = b"F"
STR_TAG = b"S"

_HEADER = struct.Struct(">cI")  # tag, value count


class EncodingError(Exception):
    """Unknown tags or corrupt payloads."""


def bits_needed(span: int) -> int:
    """Bits required to represent values in ``[0, span]``."""
    if span < 0:
        raise EncodingError(f"span must be non-negative, got {span}")
    return max(1, span.bit_length())


def _pack_nbit(values: "Sequence[int]", width: int) -> bytes:
    """Pack non-negative ints into ``width``-bit fields (big chunks)."""
    acc = 0
    for value in values:
        acc = (acc << width) | value
    total_bits = width * len(values)
    nbytes = (total_bits + 7) // 8
    acc <<= nbytes * 8 - total_bits  # left-align the last partial byte
    return acc.to_bytes(nbytes, "big") if nbytes else b""

def _unpack_nbit(payload: bytes, width: int, count: int) -> "List[int]":
    if count == 0:
        return []
    acc = int.from_bytes(payload, "big")
    total_bits = width * count
    acc >>= len(payload) * 8 - total_bits
    mask = (1 << width) - 1
    out = [0] * count
    for i in range(count - 1, -1, -1):
        out[i] = acc & mask
        acc >>= width
    return out


def encode_ints(values: "Sequence[int]") -> bytes:
    """Frame-of-reference n-bit encoding of signed integers."""
    count = len(values)
    if count == 0:
        return _HEADER.pack(INT_TAG, 0)
    lo = min(values)
    hi = max(values)
    width = bits_needed(hi - lo)
    body = _pack_nbit([v - lo for v in values], width)
    return (
        _HEADER.pack(INT_TAG, count)
        + struct.pack(">qB", lo, width)
        + body
    )


def encode_floats(values: "Sequence[float]") -> bytes:
    return _HEADER.pack(FLOAT_TAG, len(values)) + struct.pack(
        f">{len(values)}d", *values
    )


def encode_strings(values: "Sequence[str]") -> bytes:
    """Page-local dictionary + n-bit codes."""
    count = len(values)
    distinct: "List[str]" = sorted(set(values))
    index = {value: code for code, value in enumerate(distinct)}
    width = bits_needed(max(0, len(distinct) - 1))
    codes = _pack_nbit([index[v] for v in values], width) if count else b""
    dictionary = "\x00".join(distinct).encode("utf-8")
    return (
        _HEADER.pack(STR_TAG, count)
        + struct.pack(">IB", len(dictionary), width)
        + dictionary
        + codes
    )


def encode_values(kind: str, values: "Sequence[object]") -> bytes:
    """Encode a page of values of a column ``kind``.

    ``date`` columns are stored as ints (ordinal days).
    """
    if kind in ("int", "date"):
        return encode_ints(values)  # type: ignore[arg-type]
    if kind == "float":
        return encode_floats(values)  # type: ignore[arg-type]
    if kind == "str":
        return encode_strings(values)  # type: ignore[arg-type]
    raise EncodingError(f"unknown column kind {kind!r}")


def decode_values_np(payload: bytes):
    """Decode a page into a read-only numpy column vector.

    The vectorized executor's decode path (DESIGN.md §14): floats come
    back as a zero-copy big-endian view straight over the page bytes,
    ints as a frame-of-reference bias over a vectorized n-bit unpack,
    and strings as a fancy-indexed page dictionary.  Values are
    element-wise identical to :func:`decode_values`; arrays are marked
    read-only so the decoded-batch cache can share them across queries.
    """
    from repro.columnar import vec

    np = vec.require_numpy("decode_values_np")
    if len(payload) < _HEADER.size:
        raise EncodingError("truncated page payload")
    tag, count = _HEADER.unpack_from(payload)
    offset = _HEADER.size
    if tag == INT_TAG:
        if count == 0:
            values = np.empty(0, dtype=np.int64)
        else:
            lo, width = struct.unpack_from(">qB", payload, offset)
            offset += struct.calcsize(">qB")
            values = lo + vec.unpack_nbit(payload[offset:], width, count)
    elif tag == FLOAT_TAG:
        values = np.frombuffer(
            payload, dtype=">f8", count=count, offset=offset
        )
    elif tag == STR_TAG:
        dict_len, width = struct.unpack_from(">IB", payload, offset)
        offset += struct.calcsize(">IB")
        dictionary_raw = payload[offset:offset + dict_len].decode("utf-8")
        distinct = dictionary_raw.split("\x00") if dict_len else [""]
        offset += dict_len
        if count == 0:
            values = np.empty(0, dtype=str)
        else:
            codes = vec.unpack_nbit(payload[offset:], width, count)
            values = np.array(distinct)[codes]
    else:
        raise EncodingError(f"unknown page tag {tag!r}")
    values.setflags(write=False)
    return values


def decode_values(payload: bytes) -> "List[object]":
    """Invert :func:`encode_values` (the tag identifies the kind)."""
    if len(payload) < _HEADER.size:
        raise EncodingError("truncated page payload")
    tag, count = _HEADER.unpack_from(payload)
    offset = _HEADER.size
    if tag == INT_TAG:
        if count == 0:
            return []
        lo, width = struct.unpack_from(">qB", payload, offset)
        offset += struct.calcsize(">qB")
        deltas = _unpack_nbit(payload[offset:], width, count)
        return [lo + d for d in deltas]
    if tag == FLOAT_TAG:
        return list(struct.unpack_from(f">{count}d", payload, offset))
    if tag == STR_TAG:
        dict_len, width = struct.unpack_from(">IB", payload, offset)
        offset += struct.calcsize(">IB")
        dictionary_raw = payload[offset:offset + dict_len].decode("utf-8")
        distinct = dictionary_raw.split("\x00") if dict_len else [""]
        offset += dict_len
        if count == 0:
            return []
        codes = _unpack_nbit(payload[offset:], width, count)
        return [distinct[code] for code in codes]
    raise EncodingError(f"unknown page tag {tag!r}")
