"""Row deletion via tombstone sets.

SAP IQ deletes rows by marking them in per-table deletion bitmaps rather
than rewriting pages (pages are immutable objects on cloud dbspaces).  The
tombstone set stores range-compressed global row ids, persists as a blob
(`{table}/__deleted`), and scans mask deleted rows out.  Together with
:meth:`~repro.columnar.store.ColumnStore.append` this supports
TPC-H-refresh-style trickle workloads (RF1 inserts / RF2 deletes).
"""

from __future__ import annotations

import bisect
import json
from typing import Iterable, List, Tuple


class RowIdSet:
    """A range-compressed set of global row ids with fast membership."""

    def __init__(self, ranges: "List[Tuple[int, int]]" = ()) -> None:
        self._ranges: List[Tuple[int, int]] = sorted(ranges)
        self._starts: List[int] = [lo for lo, __ in self._ranges]

    def _rebuild(self) -> None:
        self._ranges.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._ranges:
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        self._ranges = merged
        self._starts = [lo for lo, __ in self._ranges]

    def add_many(self, row_ids: "Iterable[int]") -> int:
        """Add row ids; returns how many were newly added."""
        added = 0
        for row_id in sorted(set(row_ids)):
            if row_id in self:
                continue
            self._ranges.append((row_id, row_id))
            added += 1
        if added:
            self._rebuild()
        return added

    def __contains__(self, row_id: int) -> bool:
        index = bisect.bisect_right(self._starts, row_id) - 1
        if index < 0:
            return False
        lo, hi = self._ranges[index]
        return lo <= row_id <= hi

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def to_bytes(self) -> bytes:
        return json.dumps(self._ranges).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "RowIdSet":
        return cls([(int(lo), int(hi))
                    for lo, hi in json.loads(payload.decode("utf-8"))])
