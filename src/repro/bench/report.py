"""Small formatting helpers for paper-style benchmark tables."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: "Iterable[float]") -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def format_table(headers: "Sequence[str]",
                 rows: "Sequence[Sequence[object]]") -> str:
    """Render a fixed-width text table."""
    columns = [
        [str(header)] + [
            f"{row[i]:.1f}" if isinstance(row[i], float) else str(row[i])
            for row in rows
        ]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    for row_index in range(len(rows) + 1):
        line = "  ".join(
            columns[col][row_index].rjust(widths[col])
            for col in range(len(headers))
        )
        lines.append(line)
        if row_index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_query_times(times: "Dict[int, float]") -> str:
    rows = [(f"Q{number}", times[number]) for number in sorted(times)]
    return format_table(["query", "seconds"], rows)
