"""Experiment drivers: one function per table/figure of the paper.

Every driver returns plain dictionaries/lists so benchmarks and examples
can both render them.  Results are expressed in *virtual seconds*, which
the rate-scaling scheme (see :mod:`repro.bench.configs`) makes directly
comparable to the paper's SF-1000 numbers in shape.

Query phases start from a cold buffer/OCM (the paper's query experiments
show cold-cache warm-up behaviour, so their runs began with empty caches).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.bench.configs import (
    BENCH_PARTITIONS,
    BENCH_ROWS_PER_PAGE,
    BENCH_SCALE_FACTOR,
    PAPER_SCALE_FACTOR,
    WRITE_PATH_OPTIMIZED,
    load_engine,
    make_engine,
)
from repro.bench.report import geomean
from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.core.multiplex import Multiplex  # noqa: F401  (re-export for examples)
from repro.costs.pricing import DEFAULT_PRICES
from repro.engine import Database
from repro.objectstore.faults import FaultSchedule, ThrottleStorm
from repro.sim.metrics import snapshot_delta
from repro.tpch import power_run
from repro.tpch.runner import load_tpch_timed, make_streams, run_stream

GIB = 1024 ** 3
# Average compressed object size in the real system (~520 GB over ~1.4M
# 512 KB pages); used to convert scaled byte volumes into request counts
# for the Table 3 cost model.
REAL_OBJECT_BYTES = 370 * 1024


def _cold_caches(db: Database) -> None:
    db.buffer.invalidate_all()
    if db.ocm is not None:
        db.ocm.drain_all()
        db.ocm.invalidate_all()


class VolumeRun:
    """One load + power run on one volume/instance configuration."""

    def __init__(
        self,
        volume: str,
        instance_type: str = "m5ad.24xlarge",
        ocm_enabled: bool = True,
        scale_factor: float = BENCH_SCALE_FACTOR,
        **overrides: object,
    ) -> None:
        self.volume = volume
        self.instance_type = instance_type
        self.scale_factor = scale_factor
        self.db, self.store, self.load_seconds = load_engine(
            instance_type, volume, scale_factor, ocm_enabled, **overrides
        )
        meter = self.db.meter
        self._load_requests = dict(
            puts=self._request_bytes("put_bytes"),
            gets=self._request_bytes("get_bytes"),
        )
        _cold_caches(self.db)
        query_started = self.db.clock.now()
        self.query_times = power_run(self.db, scale_factor)
        self.query_seconds = self.db.clock.now() - query_started

    def _request_bytes(self, counter: str) -> float:
        if self.db.object_store is None:
            return 0.0
        return self.db.object_store.metrics.snapshot().get(counter, 0.0)

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #

    @property
    def geomean_seconds(self) -> float:
        return geomean(self.query_times.values())

    def scaled_data_bytes(self) -> float:
        """Data-at-rest extrapolated to the paper's SF 1000."""
        return self.db.user_data_bytes() * (
            PAPER_SCALE_FACTOR / self.scale_factor
        )

    def monthly_storage_cost(self) -> float:
        volume_key = {"s3": "s3", "ebs": "ebs-gp2", "efs": "efs"}[self.volume]
        return DEFAULT_PRICES.storage_price(volume_key).monthly_cost(
            int(self.scaled_data_bytes())
        )

    def _request_cost(self, phase: str) -> float:
        """S3 request charges for the load or query phase (scaled)."""
        if self.db.object_store is None:
            return 0.0
        snapshot = self.db.object_store.metrics.snapshot()
        ratio = PAPER_SCALE_FACTOR / self.scale_factor
        if phase == "load":
            put_bytes = self._load_requests["puts"]
            get_bytes = self._load_requests["gets"]
        else:
            put_bytes = snapshot.get("put_bytes", 0.0) - self._load_requests["puts"]
            get_bytes = snapshot.get("get_bytes", 0.0) - self._load_requests["gets"]
        puts = int(put_bytes * ratio / REAL_OBJECT_BYTES)
        gets = int(get_bytes * ratio / REAL_OBJECT_BYTES)
        return DEFAULT_PRICES.request_price("s3").cost(puts=puts, gets=gets)

    def compute_cost(self, phase: str) -> float:
        """EC2 + request cost of the load or query phase (Table 3)."""
        seconds = self.load_seconds if phase == "load" else self.query_seconds
        ec2 = DEFAULT_PRICES.instance_rate(self.instance_type) * seconds / 3600.0
        return ec2 + self._request_cost(phase)

    def ocm_stats(self) -> "Dict[str, float]":
        if self.db.ocm is None:
            return {}
        return self.db.ocm.stats()


# ---------------------------------------------------------------------- #
# Tables 2-4: the three-volume comparison
# ---------------------------------------------------------------------- #

def run_volume_comparison(
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "Dict[str, VolumeRun]":
    return {
        volume: VolumeRun(volume, scale_factor=scale_factor)
        for volume in ("s3", "ebs", "efs")
    }


def table2_rows(runs: "Dict[str, VolumeRun]") -> "List[List[object]]":
    labels = {"s3": "AWS S3", "ebs": "AWS EBS", "efs": "AWS EFS"}
    rows = []
    for volume in ("s3", "ebs", "efs"):
        run = runs[volume]
        row: "List[object]" = [labels[volume], run.load_seconds]
        row.extend(run.query_times[q] for q in sorted(run.query_times))
        row.append(run.geomean_seconds)
        rows.append(row)
    return rows


def table3_rows(runs: "Dict[str, VolumeRun]") -> "List[List[object]]":
    labels = {"s3": "AWS S3", "ebs": "AWS EBS", "efs": "AWS EFS"}
    return [
        [labels[v], runs[v].compute_cost("load"), runs[v].compute_cost("query")]
        for v in ("s3", "ebs", "efs")
    ]


def table4_rows(runs: "Dict[str, VolumeRun]") -> "List[List[object]]":
    labels = {"s3": "AWS S3", "ebs": "AWS EBS", "efs": "AWS EFS"}
    return [
        [labels[v], runs[v].monthly_storage_cost()] for v in ("s3", "ebs", "efs")
    ]


# ---------------------------------------------------------------------- #
# Table 5 + Figure 6: OCM effectiveness
# ---------------------------------------------------------------------- #

def run_ocm_experiment(
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "Dict[str, VolumeRun]":
    """Four runs: {instance} x {OCM on/off}, queries from cold caches."""
    out: Dict[str, VolumeRun] = {}
    for instance in ("m5ad.4xlarge", "m5ad.24xlarge"):
        for ocm in (True, False):
            key = f"{instance}/{'ocm' if ocm else 'noocm'}"
            out[key] = VolumeRun("s3", instance_type=instance,
                                 ocm_enabled=ocm, scale_factor=scale_factor)
    return out


def table5_rows(run: VolumeRun) -> "List[List[object]]":
    stats = run.ocm_stats()
    hits = stats.get("hits", 0.0)
    misses = stats.get("misses", 0.0)
    total = hits + misses
    return [
        ["Cache Misses", int(misses),
         f"{100 * misses / total:.1f}%" if total else "n/a"],
        ["Cache Hits", int(hits),
         f"{100 * hits / total:.1f}%" if total else "n/a"],
        ["Evictions", int(stats.get("evictions", 0.0)), ""],
    ]


def figure6_series(
    runs: "Dict[str, VolumeRun]",
) -> "Dict[str, Dict[int, float]]":
    return {key: run.query_times for key, run in runs.items()}


# ---------------------------------------------------------------------- #
# Figure 7: scale-up
# ---------------------------------------------------------------------- #

def run_scale_up(
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "List[Dict[str, object]]":
    points = []
    for instance in ("m5ad.4xlarge", "m5ad.12xlarge", "m5ad.24xlarge"):
        run = VolumeRun("s3", instance_type=instance,
                        scale_factor=scale_factor)
        points.append(
            {
                "instance": instance,
                "cpus": run.db.config.vcpus,
                "load": run.load_seconds,
                "queries": run.query_seconds,
                "total": run.load_seconds + run.query_seconds,
                "run": run,
            }
        )
    return points


# ---------------------------------------------------------------------- #
# Figure 8: NIC bandwidth during load
# ---------------------------------------------------------------------- #

def figure8_series(
    run: VolumeRun, bucket_seconds: float = 60.0
) -> "List[Tuple[float, float]]":
    """(time, Gbit/s) during the load, expressed at paper-scale rates.

    Derived from the object store's transfer completions plus the input
    stream, both of which flow through the instance NIC pipe; the curve is
    therefore bounded by what the pipe actually sustained.
    """
    assert run.db.object_store is not None
    samples = [
        (when, value)
        for when, value in run.db.object_store.metrics.series(
            "net_bytes"
        ).samples
        if when <= run.load_seconds
    ]
    # The load input also streams through the NIC, continuously.
    input_total = sum(
        value for __, value in run.store.metrics.series("input_bytes").samples
    )
    buckets: Dict[int, float] = {}
    n_buckets = max(1, int(run.load_seconds // bucket_seconds))
    for when, value in samples:
        index = int(when // bucket_seconds)
        buckets[index] = buckets.get(index, 0.0) + value
    for index in range(n_buckets):
        buckets[index] = buckets.get(index, 0.0) + input_total / n_buckets
    rate_scale = run.db.config.rate_scale
    nic_gbits_ceiling = run.db.nic.rate / rate_scale * 8 / 1e9
    out = []
    for index in sorted(buckets):
        gbits = buckets[index] * 8 / bucket_seconds / rate_scale / 1e9
        out.append((index * bucket_seconds, min(gbits, nic_gbits_ceiling)))
    return out


# ---------------------------------------------------------------------- #
# OCM policy ablation (Table 5 / Figure 6 companion)
# ---------------------------------------------------------------------- #

POLICY_ABLATION_CONFIGS: "Dict[str, Dict[str, object]]" = {
    "lru": {},
    "arc2q": {"ocm_policy": "arc2q"},
    "adaptive_read_routing": {"ocm_adaptive_routing": True},
}


def run_policy_ablation(
    scale_factor: float = BENCH_SCALE_FACTOR,
    instance_type: str = "m5ad.24xlarge",
) -> "Dict[str, VolumeRun]":
    """The TPC-H query pass under each OCM read-path variant.

    ``lru`` is the paper's cache, ``arc2q`` the scan-resistant policy,
    ``adaptive_read_routing`` the paper's proposed hot-entry re-routing
    (orthogonal to the eviction policy, kept as a third arm for
    comparison).
    """
    return {
        name: VolumeRun("s3", instance_type=instance_type,
                        scale_factor=scale_factor, **overrides)
        for name, overrides in POLICY_ABLATION_CONFIGS.items()
    }


def policy_ablation_rows(
    runs: "Dict[str, VolumeRun]",
) -> "List[List[object]]":
    """Per-policy hit ratio and scan latency summary rows."""
    rows: "List[List[object]]" = []
    for name, run in runs.items():
        stats = run.ocm_stats()
        hits = stats.get("hits", 0.0)
        misses = stats.get("misses", 0.0)
        total = hits + misses
        rows.append([
            name,
            f"{hits / total:.1%}" if total else "n/a",
            int(stats.get("evictions", 0.0)),
            run.geomean_seconds,
            run.query_seconds,
        ])
    return rows


# ---------------------------------------------------------------------- #
# PR 3 target workload: churn + scan-heavy queries (Figure-6 style)
# ---------------------------------------------------------------------- #

def run_churn_query_workload(
    optimized: bool = False,
    rounds: int = 3,
    scale_factor: float = BENCH_SCALE_FACTOR,
    instance_type: str = "m5ad.24xlarge",
    churn_rows: int = 2000,
    query_numbers: "Tuple[int, ...]" = (1, 6),
) -> "Dict[str, object]":
    """Interleave append churn with scan-heavy TPC-H queries.

    Each round appends ``churn_rows`` rows to a small fact table, re-reads
    it (the OCM's hot working set), then runs full-scan queries (Q1/Q6 by
    default) over ``lineitem`` — the access pattern in which the paper's
    single LRU lets every scan flush the cache.

    ``optimized=True`` enables the PR 3 read-path stack: the ``arc2q``
    scan-resistant policy, pipelined prefetch, and adjacent-key GET
    coalescing.  The default leaves all three off (the paper's
    configuration).  Returns a JSON-ready summary with virtual seconds,
    wall seconds, object-store request deltas and workload USD.
    """
    wall_started = time.monotonic()
    # The Figure-6 pressure condition: the OCM is smaller than the scan
    # working set (~60% of the Q1/Q6 footprint at this scale), so under
    # the paper's single LRU every round's scan cycles the cache and
    # re-misses, while arc2q's ghost lists readmit the recurring keys to
    # the protected segment.  Applied to BOTH configs — it is workload
    # shape, not part of the optimisation under test.
    ocm_capacity = max(int(384 * 1024 * (scale_factor / 0.01)), 64 * 1024)
    overrides: "Dict[str, object]" = {"ocm_capacity_bytes": ocm_capacity}
    if optimized:
        overrides.update(
            ocm_policy="arc2q",
            pipelined_prefetch=True,
            coalesce_gets=True,
        )
    db, store, load_seconds = load_engine(
        instance_type, "s3", scale_factor, True, **overrides
    )
    assert db.object_store is not None
    store.create_table(TableSchema(
        "churn_facts",
        (ColumnSchema("key", "int"), ColumnSchema("value", "float")),
        partition_column="key",
        partition_count=1,
        rows_per_page=512,
    ))
    # Seed load: append() routes rows via the bounds of an existing load.
    store.load("churn_facts", [
        (i, float(i % 97)) for i in range(1, churn_rows + 1)
    ])
    _cold_caches(db)

    workload_started = db.clock.now()
    before = db.object_store.metrics.snapshot()
    churn_seconds = 0.0
    scan_seconds = 0.0
    query_times: "Dict[int, List[float]]" = {}
    next_key = churn_rows + 1
    for __round in range(rounds):
        churn_started = db.clock.now()
        rows = [
            (next_key + i, float((next_key + i) % 97))
            for i in range(churn_rows)
        ]
        next_key += churn_rows
        store.append("churn_facts", rows)
        with QueryContext(db) as ctx:
            ctx.read("churn_facts", ["key", "value"])
        churn_seconds += db.clock.now() - churn_started

        scan_started = db.clock.now()
        times = power_run(db, scale_factor,
                          query_numbers=list(query_numbers))
        scan_seconds += db.clock.now() - scan_started
        for q, seconds in times.items():
            query_times.setdefault(q, []).append(seconds)

    requests = snapshot_delta(before, db.object_store.metrics.snapshot())
    workload_seconds = db.clock.now() - workload_started
    ratio = PAPER_SCALE_FACTOR / scale_factor
    paper_gets = int(requests.get("get_bytes", 0.0) * ratio / REAL_OBJECT_BYTES)
    paper_puts = int(requests.get("put_bytes", 0.0) * ratio / REAL_OBJECT_BYTES)
    workload_usd = (
        DEFAULT_PRICES.instance_rate(instance_type) * workload_seconds / 3600.0
        + DEFAULT_PRICES.request_price("s3").cost(
            puts=paper_puts, gets=paper_gets
        )
    )
    ocm_stats = db.ocm.stats() if db.ocm is not None else {}
    hits = ocm_stats.get("hits", 0.0)
    misses = ocm_stats.get("misses", 0.0)
    return {
        "optimized": optimized,
        "config": {
            "ocm_policy": db.config.ocm_policy,
            "pipelined_prefetch": db.config.pipelined_prefetch,
            "coalesce_gets": db.config.coalesce_gets,
            "instance_type": instance_type,
            "scale_factor": scale_factor,
            "rounds": rounds,
            "churn_rows": churn_rows,
            "query_numbers": list(query_numbers),
        },
        "load_virtual_seconds": load_seconds,
        "churn_virtual_seconds": churn_seconds,
        "scan_virtual_seconds": scan_seconds,
        "workload_virtual_seconds": workload_seconds,
        "query_virtual_seconds": {
            f"Q{q}": sum(values) / len(values)
            for q, values in sorted(query_times.items())
        },
        "get_requests": requests.get("get_requests", 0.0),
        "put_requests": requests.get("put_requests", 0.0),
        "ranged_get_requests": requests.get("ranged_get_requests", 0.0),
        "workload_usd": workload_usd,
        "ocm_hit_rate": hits / (hits + misses) if hits + misses else None,
        "wall_seconds": time.monotonic() - wall_started,
    }


# ---------------------------------------------------------------------- #
# Table 2's load column: the adaptive write-back pipeline (PR 5)
# ---------------------------------------------------------------------- #

def run_bulk_load_workload(
    optimized: bool = False,
    scale_factor: float = BENCH_SCALE_FACTOR,
    instance_type: str = "m5ad.24xlarge",
    throttle_rate_factor: "Optional[float]" = None,
) -> "Dict[str, object]":
    """TPC-H bulk load measuring the write path (DESIGN.md §11).

    ``optimized=True`` enables the PR 5 write stack (AIMD upload window,
    adjacent-key PUT coalescing, group commit flush); the default is the
    paper's fixed-window one-PUT-per-page drain.  With
    ``throttle_rate_factor`` set, a ThrottleStorm clamps the store's
    per-prefix PUT rate to that fraction for the whole load — the
    regime real S3 enforces at full scale (the sim's scaled-up request
    rates never bind at bench scale factors, so a clean-store load hides
    the request-count savings in the virtual-time column).

    USD/load extrapolates *request counts* (not bytes) to the paper's
    SF 1000: coalescing cuts requests while moving the same bytes, so a
    byte-volume extrapolation would price both configurations
    identically and erase exactly the effect under test.
    """
    wall_started = time.monotonic()
    overrides: "Dict[str, object]" = {}
    if optimized:
        overrides.update(WRITE_PATH_OPTIMIZED)
    if throttle_rate_factor is not None:
        overrides["fault_schedule"] = FaultSchedule(
            [ThrottleStorm(0.0, float("inf"), ops=("put",),
                           rate_factor=throttle_rate_factor)],
            name="load-throttle",
        )
    db = make_engine(instance_type, "s3", scale_factor, True, **overrides)
    assert db.object_store is not None
    store = ColumnStore(db)
    before = db.object_store.metrics.snapshot()
    load_started = db.clock.now()
    __states, table_seconds = load_tpch_timed(
        store, scale_factor, partitions=BENCH_PARTITIONS,
        rows_per_page=BENCH_ROWS_PER_PAGE,
    )
    load_seconds = db.clock.now() - load_started
    requests = snapshot_delta(before, db.object_store.metrics.snapshot())
    ratio = PAPER_SCALE_FACTOR / scale_factor
    paper_puts = int(requests.get("put_requests", 0.0) * ratio)
    paper_gets = int(requests.get("get_requests", 0.0) * ratio)
    load_usd = (
        DEFAULT_PRICES.instance_rate(instance_type) * load_seconds / 3600.0
        + DEFAULT_PRICES.request_price("s3").cost(
            puts=paper_puts, gets=paper_gets
        )
    )
    ocm_stats = db.ocm.stats() if db.ocm is not None else {}
    return {
        "optimized": optimized,
        "config": {
            "adaptive_upload_window": db.config.adaptive_upload_window,
            "coalesce_puts": db.config.coalesce_puts,
            "group_commit_flush": db.config.group_commit_flush,
            "instance_type": instance_type,
            "scale_factor": scale_factor,
            "throttle_rate_factor": throttle_rate_factor,
        },
        "load_virtual_seconds": load_seconds,
        "table_virtual_seconds": dict(sorted(table_seconds.items())),
        "put_requests": requests.get("put_requests", 0.0),
        "get_requests": requests.get("get_requests", 0.0),
        "ranged_put_requests": requests.get("ranged_put_requests", 0.0),
        "ranged_put_keys": requests.get("ranged_put_keys", 0.0),
        "put_bytes": requests.get("put_bytes", 0.0),
        "throttled_requests": db.object_store.throttled_requests(),
        "write_back": ocm_stats.get("write_back", 0.0),
        "write_through": ocm_stats.get("write_through", 0.0),
        "flush_for_commit_jobs": ocm_stats.get("flush_for_commit_jobs", 0.0),
        "batched_flush_uploads": ocm_stats.get("batched_flush_uploads", 0.0),
        "aimd_backoffs": ocm_stats.get("aimd_backoffs", 0.0),
        "upload_window": ocm_stats.get("upload_window"),
        "load_usd": load_usd,
        "wall_seconds": time.monotonic() - wall_started,
    }


# ---------------------------------------------------------------------- #
# Figure 9: scale-out
# ---------------------------------------------------------------------- #

def run_scale_out(
    node_counts: "Tuple[int, ...]" = (2, 4, 8),
    n_streams: int = 8,
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "List[Dict[str, object]]":
    """Throughput runs with n secondary nodes.

    Secondary nodes are m5ad.4xlarge readers with independent caches and
    NICs over shared S3 (S3 throughput scales with node count); each node
    runs its assigned streams on its own timeline and the experiment
    finishes when the slowest node does.
    """
    points = []
    for nodes in node_counts:
        sessions = []
        for __ in range(nodes):
            db, __store, __load = load_engine(
                "m5ad.4xlarge", "s3", scale_factor
            )
            _cold_caches(db)
            sessions.append(db)
        streams = make_streams(n_streams)
        per_node = [0.0] * nodes
        for index, stream in enumerate(streams):
            node = index % nodes
            per_node[node] += run_stream(sessions[node], scale_factor, stream)
        points.append(
            {
                "nodes": nodes,
                "total": max(per_node),
                "per_node": per_node,
            }
        )
    return points
