"""Experiment drivers: one function per table/figure of the paper.

Every driver returns plain dictionaries/lists so benchmarks and examples
can both render them.  Results are expressed in *virtual seconds*, which
the rate-scaling scheme (see :mod:`repro.bench.configs`) makes directly
comparable to the paper's SF-1000 numbers in shape.

Query phases start from a cold buffer/OCM (the paper's query experiments
show cold-cache warm-up behaviour, so their runs began with empty caches).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.configs import (
    BENCH_SCALE_FACTOR,
    PAPER_SCALE_FACTOR,
    load_engine,
)
from repro.bench.report import geomean
from repro.core.multiplex import Multiplex  # noqa: F401  (re-export for examples)
from repro.costs.pricing import DEFAULT_PRICES
from repro.engine import Database
from repro.tpch import power_run
from repro.tpch.runner import make_streams, run_stream

GIB = 1024 ** 3
# Average compressed object size in the real system (~520 GB over ~1.4M
# 512 KB pages); used to convert scaled byte volumes into request counts
# for the Table 3 cost model.
REAL_OBJECT_BYTES = 370 * 1024


def _cold_caches(db: Database) -> None:
    db.buffer.invalidate_all()
    if db.ocm is not None:
        db.ocm.drain_all()
        db.ocm.invalidate_all()


class VolumeRun:
    """One load + power run on one volume/instance configuration."""

    def __init__(
        self,
        volume: str,
        instance_type: str = "m5ad.24xlarge",
        ocm_enabled: bool = True,
        scale_factor: float = BENCH_SCALE_FACTOR,
    ) -> None:
        self.volume = volume
        self.instance_type = instance_type
        self.scale_factor = scale_factor
        self.db, self.store, self.load_seconds = load_engine(
            instance_type, volume, scale_factor, ocm_enabled
        )
        meter = self.db.meter
        self._load_requests = dict(
            puts=self._request_bytes("put_bytes"),
            gets=self._request_bytes("get_bytes"),
        )
        _cold_caches(self.db)
        query_started = self.db.clock.now()
        self.query_times = power_run(self.db, scale_factor)
        self.query_seconds = self.db.clock.now() - query_started

    def _request_bytes(self, counter: str) -> float:
        if self.db.object_store is None:
            return 0.0
        return self.db.object_store.metrics.snapshot().get(counter, 0.0)

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #

    @property
    def geomean_seconds(self) -> float:
        return geomean(self.query_times.values())

    def scaled_data_bytes(self) -> float:
        """Data-at-rest extrapolated to the paper's SF 1000."""
        return self.db.user_data_bytes() * (
            PAPER_SCALE_FACTOR / self.scale_factor
        )

    def monthly_storage_cost(self) -> float:
        volume_key = {"s3": "s3", "ebs": "ebs-gp2", "efs": "efs"}[self.volume]
        return DEFAULT_PRICES.storage_price(volume_key).monthly_cost(
            int(self.scaled_data_bytes())
        )

    def _request_cost(self, phase: str) -> float:
        """S3 request charges for the load or query phase (scaled)."""
        if self.db.object_store is None:
            return 0.0
        snapshot = self.db.object_store.metrics.snapshot()
        ratio = PAPER_SCALE_FACTOR / self.scale_factor
        if phase == "load":
            put_bytes = self._load_requests["puts"]
            get_bytes = self._load_requests["gets"]
        else:
            put_bytes = snapshot.get("put_bytes", 0.0) - self._load_requests["puts"]
            get_bytes = snapshot.get("get_bytes", 0.0) - self._load_requests["gets"]
        puts = int(put_bytes * ratio / REAL_OBJECT_BYTES)
        gets = int(get_bytes * ratio / REAL_OBJECT_BYTES)
        return DEFAULT_PRICES.request_price("s3").cost(puts=puts, gets=gets)

    def compute_cost(self, phase: str) -> float:
        """EC2 + request cost of the load or query phase (Table 3)."""
        seconds = self.load_seconds if phase == "load" else self.query_seconds
        ec2 = DEFAULT_PRICES.instance_rate(self.instance_type) * seconds / 3600.0
        return ec2 + self._request_cost(phase)

    def ocm_stats(self) -> "Dict[str, float]":
        if self.db.ocm is None:
            return {}
        return self.db.ocm.stats()


# ---------------------------------------------------------------------- #
# Tables 2-4: the three-volume comparison
# ---------------------------------------------------------------------- #

def run_volume_comparison(
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "Dict[str, VolumeRun]":
    return {
        volume: VolumeRun(volume, scale_factor=scale_factor)
        for volume in ("s3", "ebs", "efs")
    }


def table2_rows(runs: "Dict[str, VolumeRun]") -> "List[List[object]]":
    labels = {"s3": "AWS S3", "ebs": "AWS EBS", "efs": "AWS EFS"}
    rows = []
    for volume in ("s3", "ebs", "efs"):
        run = runs[volume]
        row: "List[object]" = [labels[volume], run.load_seconds]
        row.extend(run.query_times[q] for q in sorted(run.query_times))
        row.append(run.geomean_seconds)
        rows.append(row)
    return rows


def table3_rows(runs: "Dict[str, VolumeRun]") -> "List[List[object]]":
    labels = {"s3": "AWS S3", "ebs": "AWS EBS", "efs": "AWS EFS"}
    return [
        [labels[v], runs[v].compute_cost("load"), runs[v].compute_cost("query")]
        for v in ("s3", "ebs", "efs")
    ]


def table4_rows(runs: "Dict[str, VolumeRun]") -> "List[List[object]]":
    labels = {"s3": "AWS S3", "ebs": "AWS EBS", "efs": "AWS EFS"}
    return [
        [labels[v], runs[v].monthly_storage_cost()] for v in ("s3", "ebs", "efs")
    ]


# ---------------------------------------------------------------------- #
# Table 5 + Figure 6: OCM effectiveness
# ---------------------------------------------------------------------- #

def run_ocm_experiment(
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "Dict[str, VolumeRun]":
    """Four runs: {instance} x {OCM on/off}, queries from cold caches."""
    out: Dict[str, VolumeRun] = {}
    for instance in ("m5ad.4xlarge", "m5ad.24xlarge"):
        for ocm in (True, False):
            key = f"{instance}/{'ocm' if ocm else 'noocm'}"
            out[key] = VolumeRun("s3", instance_type=instance,
                                 ocm_enabled=ocm, scale_factor=scale_factor)
    return out


def table5_rows(run: VolumeRun) -> "List[List[object]]":
    stats = run.ocm_stats()
    hits = stats.get("hits", 0.0)
    misses = stats.get("misses", 0.0)
    total = hits + misses
    return [
        ["Cache Misses", int(misses),
         f"{100 * misses / total:.1f}%" if total else "n/a"],
        ["Cache Hits", int(hits),
         f"{100 * hits / total:.1f}%" if total else "n/a"],
        ["Evictions", int(stats.get("evictions", 0.0)), ""],
    ]


def figure6_series(
    runs: "Dict[str, VolumeRun]",
) -> "Dict[str, Dict[int, float]]":
    return {key: run.query_times for key, run in runs.items()}


# ---------------------------------------------------------------------- #
# Figure 7: scale-up
# ---------------------------------------------------------------------- #

def run_scale_up(
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "List[Dict[str, object]]":
    points = []
    for instance in ("m5ad.4xlarge", "m5ad.12xlarge", "m5ad.24xlarge"):
        run = VolumeRun("s3", instance_type=instance,
                        scale_factor=scale_factor)
        points.append(
            {
                "instance": instance,
                "cpus": run.db.config.vcpus,
                "load": run.load_seconds,
                "queries": run.query_seconds,
                "total": run.load_seconds + run.query_seconds,
                "run": run,
            }
        )
    return points


# ---------------------------------------------------------------------- #
# Figure 8: NIC bandwidth during load
# ---------------------------------------------------------------------- #

def figure8_series(
    run: VolumeRun, bucket_seconds: float = 60.0
) -> "List[Tuple[float, float]]":
    """(time, Gbit/s) during the load, expressed at paper-scale rates.

    Derived from the object store's transfer completions plus the input
    stream, both of which flow through the instance NIC pipe; the curve is
    therefore bounded by what the pipe actually sustained.
    """
    assert run.db.object_store is not None
    samples = [
        (when, value)
        for when, value in run.db.object_store.metrics.series(
            "net_bytes"
        ).samples
        if when <= run.load_seconds
    ]
    # The load input also streams through the NIC, continuously.
    input_total = sum(
        value for __, value in run.store.metrics.series("input_bytes").samples
    )
    buckets: Dict[int, float] = {}
    n_buckets = max(1, int(run.load_seconds // bucket_seconds))
    for when, value in samples:
        index = int(when // bucket_seconds)
        buckets[index] = buckets.get(index, 0.0) + value
    for index in range(n_buckets):
        buckets[index] = buckets.get(index, 0.0) + input_total / n_buckets
    rate_scale = run.db.config.rate_scale
    nic_gbits_ceiling = run.db.nic.rate / rate_scale * 8 / 1e9
    out = []
    for index in sorted(buckets):
        gbits = buckets[index] * 8 / bucket_seconds / rate_scale / 1e9
        out.append((index * bucket_seconds, min(gbits, nic_gbits_ceiling)))
    return out


# ---------------------------------------------------------------------- #
# Figure 9: scale-out
# ---------------------------------------------------------------------- #

def run_scale_out(
    node_counts: "Tuple[int, ...]" = (2, 4, 8),
    n_streams: int = 8,
    scale_factor: float = BENCH_SCALE_FACTOR,
) -> "List[Dict[str, object]]":
    """Throughput runs with n secondary nodes.

    Secondary nodes are m5ad.4xlarge readers with independent caches and
    NICs over shared S3 (S3 throughput scales with node count); each node
    runs its assigned streams on its own timeline and the experiment
    finishes when the slowest node does.
    """
    points = []
    for nodes in node_counts:
        sessions = []
        for __ in range(nodes):
            db, __store, __load = load_engine(
                "m5ad.4xlarge", "s3", scale_factor
            )
            _cold_caches(db)
            sessions.append(db)
        streams = make_streams(n_streams)
        per_node = [0.0] * nodes
        for index, stream in enumerate(streams):
            node = index % nodes
            per_node[node] += run_stream(sessions[node], scale_factor, stream)
        points.append(
            {
                "nodes": nodes,
                "total": max(per_node),
                "per_node": per_node,
            }
        )
    return points
