"""The disaster-recovery drill: outage -> failover -> heal -> fsck -> restore.

One deterministic end-to-end scenario shared by the ``repro dr`` CLI
command and the PR 6 benchmark.  A two-region multiplex commits data and
takes a snapshot, the primary region drops off the map, the coordinator
fails over to the surviving region, business continues, the dead region
heals and reconciles, the auditor checks every region, and finally the
pre-outage snapshot is restored *on the new primary* — a cross-region
point-in-time restore.

The drill measures the two numbers DESIGN.md §12 defines:

- **RTO** — virtual seconds from the start of the primary-region outage
  to the first successful cold-cache query on the new primary.  The
  dominant term is the failover fence (waiting out the write horizon so
  the old primary's in-flight PUTs cannot win last-writer-wins races).
- **RPO** — zero for acknowledged writes by construction: the replication
  queue is durable and promotion drains it before the primary flips.  For
  *replicated visibility* the guarantee is the staleness horizon; the
  drill reports the worst replication lag actually observed as evidence
  the bound holds.

Everything runs on the virtual clock, so the reported seconds are exact
and reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.crash_explorer import base_config
from repro.core.audit import AuditReport, StoreAuditor
from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.objectstore.replicated import ReplicationConfig

PAYLOAD_BYTES = 1024
BUFFER_FRAMES = 16


@dataclass(frozen=True)
class DrillConfig:
    """Knobs for one DR drill run."""

    seed: int = 0
    regions: "Tuple[str, ...]" = ("region-a", "region-b")
    mean_lag_seconds: float = 0.5
    staleness_horizon: float = 30.0
    outage_seconds: float = 60.0
    pages: int = 4
    # Long enough that the pre-outage snapshot survives the heal phase;
    # the drill restores it at the end, so it must not be reaped.
    retention_seconds: float = 3600.0


@dataclass
class DrillResult:
    """Outcome and measurements of one DR drill."""

    seed: int
    mean_lag_seconds: float
    staleness_horizon: float
    failover_region: str = ""
    # (virtual clock, phase, description) — the CLI narrates these.
    events: "List[Tuple[float, str, str]]" = field(default_factory=list)
    failover_seconds: float = 0.0
    rto_seconds: float = 0.0
    rpo_acknowledged_seconds: float = 0.0
    rpo_bound_seconds: float = 0.0
    max_observed_lag_seconds: float = 0.0
    mean_observed_lag_seconds: float = 0.0
    replicated_applies: int = 0
    drained_entries: int = 0
    audit_ok: bool = False
    restore_ok: bool = False
    violations: "List[str]" = field(default_factory=list)
    report: "Optional[AuditReport]" = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> "Dict[str, object]":
        return {
            "seed": self.seed,
            "mean_lag_seconds": self.mean_lag_seconds,
            "staleness_horizon": self.staleness_horizon,
            "failover_region": self.failover_region,
            "failover_seconds": round(self.failover_seconds, 6),
            "rto_seconds": round(self.rto_seconds, 6),
            "rpo_acknowledged_seconds": self.rpo_acknowledged_seconds,
            "rpo_bound_seconds": self.rpo_bound_seconds,
            "max_observed_lag_seconds": round(
                self.max_observed_lag_seconds, 6
            ),
            "mean_observed_lag_seconds": round(
                self.mean_observed_lag_seconds, 6
            ),
            "replicated_applies": self.replicated_applies,
            "drained_entries": self.drained_entries,
            "audit_ok": self.audit_ok,
            "restore_ok": self.restore_ok,
            "ok": self.ok,
            "violations": list(self.violations),
        }


def _payload(obj: str, page: int, gen: int, seed: int) -> bytes:
    header = f"dr:{obj}:{page}:{gen}:{seed}:".encode()
    body = bytes(
        (page * 113 + gen * 29 + seed * 7 + i * 13) % 251
        for i in range(PAYLOAD_BYTES - len(header))
    )
    return header + body


def run_dr_drill(config: "Optional[DrillConfig]" = None) -> DrillResult:
    """Run the full DR workflow once and measure RTO/RPO."""
    cfg = config or DrillConfig()
    result = DrillResult(
        seed=cfg.seed,
        mean_lag_seconds=cfg.mean_lag_seconds,
        staleness_horizon=cfg.staleness_horizon,
        rpo_bound_seconds=cfg.staleness_horizon,
    )
    mux = Multiplex(
        base_config(cfg.seed, dict(
            replication=ReplicationConfig(
                regions=cfg.regions,
                mean_lag_seconds=cfg.mean_lag_seconds,
                staleness_horizon=cfg.staleness_horizon,
            ),
            retention_seconds=cfg.retention_seconds,
        )),
        MultiplexConfig(
            writers=1,
            secondary_buffer_bytes=BUFFER_FRAMES * PAYLOAD_BYTES,
            secondary_ocm_bytes=4 * 1024 * 1024,
        ),
    )
    coordinator = mux.coordinator
    writer = mux.node("writer-1")
    store = coordinator.object_store
    clock = mux.clock

    def note(phase: str, description: str) -> None:
        result.events.append((round(clock.now(), 3), phase, description))

    def commit_generation(gen: int) -> "Dict[int, bytes]":
        staged = {p: _payload("t0", p, gen, cfg.seed)
                  for p in range(cfg.pages)}
        txn = writer.begin()
        for p, data in staged.items():
            writer.write_page(txn, "t0", p, data)
        writer.commit(txn)
        return staged

    def probe(page: int) -> "Optional[bytes]":
        txn = coordinator.begin()
        try:
            data: "Optional[bytes]" = coordinator.read_page(txn, "t0", page)
        except Exception:
            data = None
        try:
            coordinator.rollback(txn)
        except Exception:
            pass
        return data

    # --- steady state on the original primary -------------------------- #
    coordinator.create_object("t0")
    commit_generation(0)
    snapshot = coordinator.create_snapshot()
    note("steady", f"snapshot {snapshot.snapshot_id} taken on "
                   f"primary {cfg.regions[0]}")
    gen1 = commit_generation(1)
    note("steady", f"generation 1 committed ({cfg.pages} pages, "
                   "acknowledged on the primary)")

    # --- the primary region goes away ---------------------------------- #
    outage_start = clock.now()
    mux.inject_region_outage(
        cfg.regions[0], (outage_start, outage_start + cfg.outage_seconds)
    )
    clock.advance(0.001)
    note("outage", f"region {cfg.regions[0]} unreachable for "
                   f"{cfg.outage_seconds:g}s")

    # --- failover ------------------------------------------------------- #
    drained_before = coordinator.metrics.counter(
        "region_failover_drained_entries"
    ).value
    new_primary = mux.region_failover()
    result.failover_region = new_primary
    result.drained_entries = int(
        coordinator.metrics.counter(
            "region_failover_drained_entries"
        ).value - drained_before
    )
    result.failover_seconds = clock.now() - outage_start
    note("failover", f"promoted {new_primary} after draining "
                     f"{result.drained_entries} queued entries")

    # --- RTO: first successful cold-cache query on the new primary ------ #
    coordinator.node.invalidate_caches()
    if coordinator.ocm is not None:
        coordinator.ocm.invalidate_all()
    for attempt in range(64):
        if probe(0) == gen1[0]:
            break
        clock.advance(0.25)
    else:
        result.violations.append(
            "no successful query on the new primary within the probe budget"
        )
    result.rto_seconds = clock.now() - outage_start
    note("failover", f"first successful query on {new_primary} "
                     f"(RTO {result.rto_seconds:.3f}s after outage start)")

    # Business continues against the new primary.
    gen2 = commit_generation(2)
    note("failover", "generation 2 committed against the new primary")

    # --- heal: the dead region comes back and reconciles ----------------- #
    schedule = store.fault_schedule
    heal_at = schedule.horizon if schedule is not None else clock.now()
    clock.advance_to(max(clock.now(), heal_at) + cfg.staleness_horizon + 1.0)
    store.pump(clock.now())
    coordinator.txn_manager.collect_garbage()
    # GC's own deletes queue fresh tombstones; give them one more horizon
    # to propagate before requiring empty queues.
    clock.advance(cfg.staleness_horizon + 1.0)
    store.pump(clock.now())
    if store.pending_count():
        result.violations.append(
            f"replication queues did not drain after heal: "
            f"{store.pending_count()} entries pending"
        )
    note("heal", f"region {cfg.regions[0]} healed and reconciled "
                 f"({store.pending_count()} entries pending)")

    # --- RPO evidence ---------------------------------------------------- #
    stale = store.check_staleness(clock.now())
    if stale:
        result.violations.append(
            f"bounded staleness broken: {len(stale)} entries past the "
            f"{cfg.staleness_horizon:g}s horizon"
        )
    lag = store.replication_metrics.histogram("replication_lag")
    if lag.count:
        result.max_observed_lag_seconds = max(lag.values)
        result.mean_observed_lag_seconds = lag.mean
        if result.max_observed_lag_seconds > cfg.staleness_horizon + 1e-9:
            result.violations.append(
                f"observed replication lag "
                f"{result.max_observed_lag_seconds:.3f}s exceeds the "
                f"{cfg.staleness_horizon:g}s staleness horizon"
            )
    result.replicated_applies = int(
        store.replication_metrics.counter("replication_applied").value
    )
    deferred = store.replication_metrics.histogram(
        "replication_lag_deferred"
    )
    note("rpo", f"worst bound-governed replication lag "
                f"{result.max_observed_lag_seconds:.3f}s "
                f"(bound {cfg.staleness_horizon:g}s, "
                f"{deferred.count} outage-deferred applies exempt); "
                "acknowledged-write RPO 0s by queue drain")

    # --- fsck across every region ---------------------------------------- #
    report = StoreAuditor(coordinator).audit()
    result.report = report
    result.audit_ok = report.ok()
    if not report.ok():
        result.violations.append(
            f"fsck NOT clean: {len(report.missing)} missing, "
            f"{len(report.leaked)} leaked, "
            f"{len(report.region_missing)} region-missing, "
            f"{len(report.region_leaked)} region-leaked, "
            f"{len(report.region_divergent)} divergent, "
            f"{len(report.staleness_violations)} stale"
        )
    note("fsck", f"audited {len(report.regions_audited) + 1} regions: "
                 f"{'clean' if report.ok() else 'NOT clean'}")

    # --- cross-region point-in-time restore ------------------------------ #
    coordinator.restore_snapshot(snapshot.snapshot_id)
    gen0 = {p: _payload("t0", p, 0, cfg.seed) for p in range(cfg.pages)}
    coordinator.node.invalidate_caches()
    if coordinator.ocm is not None:
        coordinator.ocm.invalidate_all()
    result.restore_ok = all(probe(p) == gen0[p] for p in gen0)
    if not result.restore_ok:
        result.violations.append(
            "cross-region restore did not rewind to the snapshot image"
        )
    elif any(probe(p) == gen2.get(p) for p in gen0):
        result.restore_ok = False
        result.violations.append(
            "cross-region restore left post-snapshot data visible"
        )
    note("restore", f"snapshot {snapshot.snapshot_id} restored on "
                    f"{new_primary}: "
                    f"{'ok' if result.restore_ok else 'FAILED'}")
    return result


def run_dr_matrix(
    lag_settings: "Sequence[float]" = (0.1, 0.5, 2.0),
    seed: int = 0,
    staleness_horizon: float = 30.0,
) -> "List[DrillResult]":
    """One drill per replication-lag setting (the PR 6 benchmark table)."""
    return [
        run_dr_drill(DrillConfig(
            seed=seed,
            mean_lag_seconds=lag,
            staleness_horizon=staleness_horizon,
        ))
        for lag in lag_settings
    ]
