"""Multi-tenant load generator on the event-driven session scheduler.

This is the serving-side complement to the single-stream experiment
drivers: instead of one workload stream owning the clock, thousands of
logical client sessions interleave on a shared engine via
:class:`~repro.sim.sessions.SessionScheduler` (DESIGN.md §13).

- **Arrival profiles**: open-loop Poisson arrivals, bursty (duty-cycled
  Poisson) arrivals, or a closed loop where every session exists from
  t=0 and paces itself with think time.  Open-loop profiles ramp in
  stages — stage ``s`` offers ``s``× the base arrival rate — so one run
  traces a saturation curve.
- **Tenant mix**: each session belongs to a tenant class (point lookups,
  TPC-H analysts, churn writers) with its own think time, per-session op
  count and latency SLO.
- **Admission control** (optional): a bounded number of in-engine
  operations with per-tenant round-robin fairness; waiting sessions park
  on the scheduler, so admission latency is measured on the same clock
  as service latency.
- **Reporting**: per-tenant p50/p95/p99/max, SLO attainment, per-stage
  saturation points, admission wait tails — never just totals.

Everything is a pure function of ``LoadConfig`` (seed included): two runs
produce byte-identical summary JSON, which the ``load-smoke`` CI job
gates on.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.bench.configs import load_engine
from repro.columnar.query import QueryContext
from repro.sim.metrics import MetricsRegistry
from repro.sim.sessions import Session, SessionScheduler
from repro.sim.rng import DeterministicRng
from repro.tpch.queries import run_query

SUMMARY_SCHEMA = "repro.load/v1"

LOOKUP_BANK = "pointbank"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class of the serving mix."""

    name: str
    weight: float            # share of sessions drawn into this class
    op: str                  # "lookup" | "query" | "churn"
    think_mean: float        # mean think seconds between a session's ops
    ops_per_session: int
    slo_seconds: float       # per-op latency SLO for attainment reporting

    def __post_init__(self) -> None:
        if self.op not in ("lookup", "query", "churn"):
            raise ValueError(f"unknown tenant op {self.op!r}")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive: {self.name}")
        if self.ops_per_session < 1:
            raise ValueError(f"need at least one op per session: {self.name}")


DEFAULT_TENANTS: "Tuple[TenantSpec, ...]" = (
    TenantSpec("lookup", 0.75, "lookup", think_mean=0.25,
               ops_per_session=6, slo_seconds=0.25),
    TenantSpec("churn", 0.17, "churn", think_mean=0.5,
               ops_per_session=4, slo_seconds=1.5),
    TenantSpec("analyst", 0.08, "query", think_mean=2.0,
               ops_per_session=1, slo_seconds=120.0),
)


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one load run (everything the summary depends on)."""

    sessions: int = 200
    seed: int = 0
    profile: str = "poisson"          # "poisson" | "bursty" | "closed"
    arrival_rate: float = 40.0        # stage-1 session arrivals per second
    stages: int = 3                   # open-loop ramp stages (stage s: s*rate)
    burst_factor: float = 8.0         # bursty: rate multiplier inside a burst
    burst_duty: float = 0.2           # bursty: fraction of the period bursting
    burst_period: float = 4.0         # bursty: seconds per on/off cycle
    admission_limit: int = 0          # max concurrent in-engine ops (0 = off)
    scale_factor: float = 0.002
    instance_type: str = "m5ad.4xlarge"
    tenants: "Tuple[TenantSpec, ...]" = DEFAULT_TENANTS
    lookup_pages: int = 48            # pages in the shared point-lookup bank
    churn_pages_per_op: int = 2
    query_numbers: "Tuple[int, ...]" = (1, 6)

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("need at least one session")
        if self.profile not in ("poisson", "bursty", "closed"):
            raise ValueError(f"unknown arrival profile {self.profile!r}")
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.stages < 1:
            raise ValueError("need at least one ramp stage")
        if self.admission_limit < 0:
            raise ValueError("admission limit cannot be negative")
        if abs(sum(t.weight for t in self.tenants) - 1.0) > 1e-9:
            raise ValueError("tenant weights must sum to 1")


class AdmissionController:
    """Bounded in-flight ops with per-tenant round-robin fairness.

    ``acquire`` parks the calling session when the engine is at its
    concurrency limit; ``release`` grants the freed slot to the next
    waiting *tenant* in round-robin order (FIFO within a tenant), so one
    chatty tenant class cannot starve the others out of admission.
    """

    def __init__(self, scheduler: SessionScheduler, limit: int,
                 metrics: MetricsRegistry) -> None:
        self.scheduler = scheduler
        self.limit = limit
        self.metrics = metrics
        self.in_flight = 0
        self._queues: "Dict[str, Deque[Session]]" = {}
        self._ring: "Deque[str]" = deque()

    def acquire(self, session: Session, tenant: str) -> float:
        """Take a slot, waiting if needed; returns seconds spent waiting."""
        if self.in_flight < self.limit:
            self.in_flight += 1
            return 0.0
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._ring.append(tenant)
        queue.append(session)
        started = self.scheduler.clock.now()
        self.scheduler.suspend(session)
        waited = self.scheduler.clock.now() - started
        self.metrics.counter("admission_waits").increment()
        self.metrics.counter(f"admission_waits:{tenant}").increment()
        self.metrics.histogram("admission_wait_seconds").observe(waited)
        return waited

    def release(self) -> None:
        """Free a slot; hand it to the next waiter, fairly across tenants."""
        for __ in range(len(self._ring)):
            tenant = self._ring[0]
            self._ring.rotate(-1)
            queue = self._queues[tenant]
            if queue:
                # The slot transfers to the waiter: in_flight is unchanged.
                self.scheduler.resume(queue.popleft())
                return
        self.in_flight -= 1


class LoadHarness:
    """Builds the engine, spawns the tenant sessions, renders the summary."""

    def __init__(self, config: "Optional[LoadConfig]" = None) -> None:
        self.config = config or LoadConfig()
        cfg = self.config
        self._wall_started = time.monotonic()
        self.db, self.store, self.load_seconds = load_engine(
            cfg.instance_type, "s3", cfg.scale_factor,
            seed=cfg.seed,
        )
        self._rng = DeterministicRng(cfg.seed, "load-harness")
        self.metrics = MetricsRegistry()
        self.scheduler = self.db.new_session_scheduler()
        self.admission: "Optional[AdmissionController]" = (
            AdmissionController(self.scheduler, cfg.admission_limit,
                                self.metrics)
            if cfg.admission_limit > 0 else None
        )
        self._stage_of: "Dict[int, int]" = {}       # session_id -> stage
        self._stage_windows: "List[Tuple[float, float]]" = []
        self._stage_sessions: "List[int]" = []
        self._churn_created: "Dict[str, int]" = {}  # object -> next page
        self._setup_lookup_bank()
        self._cold_caches()
        self._workload_started = self.db.clock.now()

    # -- setup ---------------------------------------------------------- #

    def _setup_lookup_bank(self) -> None:
        """A small shared object the point-lookup tenant reads pages of."""
        db = self.db
        db.create_object(LOOKUP_BANK)
        txn = db.begin()
        for page in range(self.config.lookup_pages):
            db.write_page(txn, LOOKUP_BANK, page, (b"pb-%06d|" % page) * 64)
        db.commit(txn)

    def _cold_caches(self) -> None:
        self.db.buffer.invalidate_all()
        if self.db.ocm is not None:
            self.db.ocm.drain_all()
            self.db.ocm.invalidate_all()

    # -- arrivals -------------------------------------------------------- #

    def _stage_plan(self) -> "List[int]":
        """Sessions per ramp stage (closed loops are a single stage)."""
        cfg = self.config
        stages = 1 if cfg.profile == "closed" else cfg.stages
        base, extra = divmod(cfg.sessions, stages)
        return [base + (1 if s < extra else 0) for s in range(stages)]

    def _arrival_times(self) -> "List[Tuple[float, int]]":
        """Deterministic (arrival_time, stage) per session, in spawn order.

        Open-loop stages ramp the offered rate: stage ``s`` (1-based)
        draws inter-arrival gaps at ``s * arrival_rate``.  The bursty
        profile duty-cycles each stage's rate: inside the burst window of
        every ``burst_period`` the rate is multiplied by ``burst_factor``,
        outside it the residual rate keeps the stage average comparable.
        """
        cfg = self.config
        plan = self._stage_plan()
        if cfg.profile == "closed":
            self._stage_windows.append((0.0, 0.0))
            self._stage_sessions.append(cfg.sessions)
            return [(0.0, 1)] * cfg.sessions
        rng = self._rng.substream("arrivals")
        arrivals: "List[Tuple[float, int]]" = []
        cursor = 0.0
        for index, count in enumerate(plan):
            stage = index + 1
            stage_rate = cfg.arrival_rate * stage
            window_start = cursor
            for __ in range(count):
                rate = stage_rate
                if cfg.profile == "bursty":
                    phase = cursor % cfg.burst_period
                    in_burst = phase < cfg.burst_duty * cfg.burst_period
                    if in_burst:
                        rate = stage_rate * cfg.burst_factor
                    else:
                        off_scale = max(
                            1e-6,
                            (1.0 - cfg.burst_duty * cfg.burst_factor)
                            / max(1e-6, 1.0 - cfg.burst_duty),
                        )
                        rate = stage_rate * off_scale
                cursor += rng.expovariate(rate)
                arrivals.append((cursor, stage))
            self._stage_windows.append((window_start, cursor))
            self._stage_sessions.append(count)
        return arrivals

    def _pick_tenants(self) -> "List[TenantSpec]":
        rng = self._rng.substream("tenant-mix")
        tenants = list(self.config.tenants)
        picks: "List[TenantSpec]" = []
        for __ in range(self.config.sessions):
            draw = rng.random()
            acc = 0.0
            chosen = tenants[-1]
            for spec in tenants:
                acc += spec.weight
                if draw < acc:
                    chosen = spec
                    break
            picks.append(chosen)
        return picks

    # -- the session program -------------------------------------------- #

    def _session_body(self, spec: TenantSpec, stage: int):
        def body(session: Session) -> None:
            rng = self._rng.substream(f"session/{session.session_id}")
            clock = self.db.clock
            for op_index in range(spec.ops_per_session):
                if op_index and spec.think_mean > 0:
                    session.sleep(rng.expovariate(1.0 / spec.think_mean))
                if self.admission is not None:
                    self.admission.acquire(session, spec.name)
                started = clock.now()
                try:
                    self._run_op(spec, session, rng)
                except Exception:
                    self.metrics.counter("ops_failed").increment()
                    self.metrics.counter(
                        f"ops_failed:{spec.name}"
                    ).increment()
                else:
                    self.metrics.counter("ops_completed").increment()
                finally:
                    if self.admission is not None:
                        self.admission.release()
                latency = clock.now() - started
                self.metrics.histogram(f"latency:{spec.name}").observe(latency)
                self.metrics.histogram(f"latency:stage{stage}").observe(latency)
        return body

    def _run_op(self, spec: TenantSpec, session: Session,
                rng: DeterministicRng) -> None:
        db = self.db
        if spec.op == "lookup":
            page = rng.randint(0, self.config.lookup_pages - 1)
            txn = db.begin()
            try:
                db.read_page(txn, LOOKUP_BANK, page)
            finally:
                db.commit(txn)
        elif spec.op == "query":
            number = rng.choice(list(self.config.query_numbers))
            with QueryContext(db) as ctx:
                run_query(ctx, number, self.config.scale_factor)
        else:  # churn: append pages to this session's own object
            name = f"churn/{session.session_id}"
            next_page = self._churn_created.get(name)
            if next_page is None:
                db.create_object(name)
                next_page = 0
            txn = db.begin()
            try:
                for offset in range(self.config.churn_pages_per_op):
                    payload = (b"ch-%06d-%04d|" % (session.session_id,
                                                   next_page + offset)) * 48
                    db.write_page(txn, name, next_page + offset, payload)
                db.commit(txn)
                self._churn_created[name] = (
                    next_page + self.config.churn_pages_per_op
                )
            except Exception:
                db.rollback(txn)
                raise

    # -- driving --------------------------------------------------------- #

    def run(self) -> "Dict[str, object]":
        """Spawn every session per the arrival plan; drain; summarize."""
        tenants = self._pick_tenants()
        arrivals = self._arrival_times()
        # Arrival times are relative to the end of setup (TPC-H load and
        # the lookup bank already consumed virtual time).
        epoch = self._workload_started
        for (when, stage), spec in zip(arrivals, tenants):
            session = self.scheduler.spawn(
                self._session_body(spec, stage),
                at=epoch + when,
                tenant=spec.name,
            )
            self._stage_of[session.session_id] = stage
        self.scheduler.run()
        return self.summary()

    # -- reporting -------------------------------------------------------- #

    @staticmethod
    def _tail(histogram) -> "Dict[str, float]":
        return {
            "mean": round(histogram.mean, 6),
            "p50": round(histogram.percentile(50.0), 6),
            "p95": round(histogram.percentile(95.0), 6),
            "p99": round(histogram.percentile(99.0), 6),
            "max": round(max(histogram.values), 6) if histogram.count else 0.0,
        }

    def summary(self) -> "Dict[str, object]":
        cfg = self.config
        counters = self.metrics.snapshot()
        clock_seconds = self.db.clock.now() - self._workload_started
        tenant_sessions: "Dict[str, int]" = {}
        for session in self.scheduler.sessions:
            tenant_sessions[session.tenant] = (
                tenant_sessions.get(session.tenant, 0) + 1
            )
        tenants: "Dict[str, object]" = {}
        for spec in cfg.tenants:
            histogram = self.metrics.histogram(f"latency:{spec.name}")
            attained = sum(
                1 for v in histogram.values if v <= spec.slo_seconds
            )
            tenants[spec.name] = {
                "sessions": tenant_sessions.get(spec.name, 0),
                "ops": histogram.count,
                "failed": int(counters.get(f"ops_failed:{spec.name}", 0.0)),
                "latency_seconds": self._tail(histogram),
                "slo_seconds": spec.slo_seconds,
                "slo_attainment": (
                    round(attained / histogram.count, 6)
                    if histogram.count else None
                ),
                "throughput_ops_per_second": (
                    round(histogram.count / clock_seconds, 6)
                    if clock_seconds > 0 else 0.0
                ),
            }
        saturation: "List[Dict[str, object]]" = []
        stage_count = 1 if cfg.profile == "closed" else cfg.stages
        for index in range(stage_count):
            stage = index + 1
            histogram = self.metrics.histogram(f"latency:stage{stage}")
            window = (
                self._stage_windows[index]
                if index < len(self._stage_windows)
                else (0.0, clock_seconds)
            )
            window_seconds = max(window[1] - window[0], 1e-9)
            offered = (
                cfg.arrival_rate * stage
                if cfg.profile != "closed"
                else None
            )
            saturation.append({
                "stage": stage,
                "sessions": (
                    self._stage_sessions[index]
                    if index < len(self._stage_sessions)
                    else cfg.sessions
                ),
                "offered_sessions_per_second": (
                    round(offered, 6) if offered is not None else None
                ),
                "arrival_window_seconds": [
                    round(window[0], 6), round(window[1], 6)
                ],
                "realized_arrival_rate": (
                    round(
                        (self._stage_sessions[index]
                         if index < len(self._stage_sessions)
                         else cfg.sessions)
                        / window_seconds, 6
                    )
                    if cfg.profile != "closed" else None
                ),
                "ops": histogram.count,
                "latency_seconds": self._tail(histogram),
            })
        admission: "Optional[Dict[str, object]]" = None
        if self.admission is not None:
            waits = self.metrics.histogram("admission_wait_seconds")
            admission = {
                "limit": cfg.admission_limit,
                "waits": int(counters.get("admission_waits", 0.0)),
                "waits_by_tenant": {
                    spec.name: int(
                        counters.get(f"admission_waits:{spec.name}", 0.0)
                    )
                    for spec in cfg.tenants
                },
                "wait_seconds": self._tail(waits),
            }
        return {
            "schema": SUMMARY_SCHEMA,
            "config": {
                "sessions": cfg.sessions,
                "seed": cfg.seed,
                "profile": cfg.profile,
                "arrival_rate": cfg.arrival_rate,
                "stages": stage_count,
                "admission_limit": cfg.admission_limit,
                "scale_factor": cfg.scale_factor,
                "instance_type": cfg.instance_type,
                "tenant_mix": [asdict(spec) for spec in cfg.tenants],
            },
            "clock_seconds": round(clock_seconds, 6),
            "ops": {
                "completed": int(counters.get("ops_completed", 0.0)),
                "failed": int(counters.get("ops_failed", 0.0)),
            },
            "tenants": tenants,
            "saturation": saturation,
            "admission": admission,
            "scheduler": {
                "sessions": len(self.scheduler.sessions),
                "handoffs": self.scheduler.handoffs,
            },
        }

    @property
    def wall_seconds(self) -> float:
        return time.monotonic() - self._wall_started


def run_load(config: "Optional[LoadConfig]" = None) -> "Dict[str, object]":
    """Build a harness, run it, return the deterministic summary."""
    return LoadHarness(config).run()
