"""Multi-tenant load generator on the event-driven session scheduler.

This is the serving-side complement to the single-stream experiment
drivers: instead of one workload stream owning the clock, thousands of
logical client sessions interleave on a shared engine via
:class:`~repro.sim.sessions.SessionScheduler` (DESIGN.md §13).

- **Arrival profiles**: open-loop Poisson arrivals, bursty (duty-cycled
  Poisson) arrivals, or a closed loop where every session exists from
  t=0 and paces itself with think time.  Open-loop profiles ramp in
  stages — stage ``s`` offers ``s``× the base arrival rate — so one run
  traces a saturation curve.
- **Tenant mix**: each session belongs to a tenant class (point lookups,
  TPC-H analysts, churn writers) with its own think time, per-session op
  count and latency SLO.
- **Admission control** (optional): a bounded number of in-engine
  operations with per-tenant round-robin fairness; waiting sessions park
  on the scheduler, so admission latency is measured on the same clock
  as service latency.
- **Reporting**: per-tenant p50/p95/p99/max, SLO attainment, per-stage
  saturation points, admission wait tails — never just totals.

Everything is a pure function of ``LoadConfig`` (seed included): two runs
produce byte-identical summary JSON, which the ``load-smoke`` CI job
gates on.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.bench.configs import (
    BENCH_PARTITIONS,
    BENCH_ROWS_PER_PAGE,
    CPU_PARALLEL_FRACTION,
    bench_config,
    load_engine,
)
from repro.columnar import ColumnStore
from repro.columnar.query import QueryContext
from repro.core.autoscale import (
    COORDINATOR_ID,
    AutoscaleConfig,
    AutoscaleController,
    AutoscaleSignals,
    NodeRouter,
)
from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.sim.metrics import MetricsRegistry
from repro.sim.sessions import Session, SessionScheduler
from repro.sim.rng import DeterministicRng
from repro.tpch import load_tpch
from repro.tpch.queries import run_query

SUMMARY_SCHEMA = "repro.load/v2"

LOOKUP_BANK = "pointbank"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class of the serving mix."""

    name: str
    weight: float            # share of sessions drawn into this class
    op: str                  # "lookup" | "query" | "churn"
    think_mean: float        # mean think seconds between a session's ops
    ops_per_session: int
    slo_seconds: float       # per-op latency SLO for attainment reporting

    def __post_init__(self) -> None:
        if self.op not in ("lookup", "query", "churn"):
            raise ValueError(f"unknown tenant op {self.op!r}")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive: {self.name}")
        if self.ops_per_session < 1:
            raise ValueError(f"need at least one op per session: {self.name}")


DEFAULT_TENANTS: "Tuple[TenantSpec, ...]" = (
    TenantSpec("lookup", 0.75, "lookup", think_mean=0.25,
               ops_per_session=6, slo_seconds=0.25),
    TenantSpec("churn", 0.17, "churn", think_mean=0.5,
               ops_per_session=4, slo_seconds=1.5),
    TenantSpec("analyst", 0.08, "query", think_mean=2.0,
               ops_per_session=1, slo_seconds=120.0),
)


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one load run (everything the summary depends on)."""

    sessions: int = 200
    seed: int = 0
    profile: str = "poisson"          # "poisson" | "bursty" | "closed"
    arrival_rate: float = 40.0        # stage-1 session arrivals per second
    stages: int = 3                   # open-loop ramp stages (stage s: s*rate)
    burst_factor: float = 8.0         # bursty: rate multiplier inside a burst
    burst_duty: float = 0.2           # bursty: fraction of the period bursting
    burst_period: float = 4.0         # bursty: seconds per on/off cycle
    admission_limit: int = 0          # concurrent in-engine ops, per serving
                                      # node when nodes > 1 (0 = off)
    scale_factor: float = 0.002
    instance_type: str = "m5ad.4xlarge"
    tenants: "Tuple[TenantSpec, ...]" = DEFAULT_TENANTS
    lookup_pages: int = 48            # pages in the shared point-lookup bank
    churn_pages_per_op: int = 2
    query_numbers: "Tuple[int, ...]" = (1, 6)
    nodes: int = 1                    # serving targets incl. the coordinator
    autoscale: "Optional[AutoscaleConfig]" = None

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("need at least one session")
        if self.nodes < 1:
            raise ValueError("need at least one serving node")
        if self.autoscale is not None and not (
            self.autoscale.min_nodes
            <= self.nodes
            <= self.autoscale.max_nodes
        ):
            raise ValueError(
                "initial node count must lie inside the autoscale clamps"
            )
        if self.profile not in ("poisson", "bursty", "closed"):
            raise ValueError(f"unknown arrival profile {self.profile!r}")
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.stages < 1:
            raise ValueError("need at least one ramp stage")
        if self.admission_limit < 0:
            raise ValueError("admission limit cannot be negative")
        if abs(sum(t.weight for t in self.tenants) - 1.0) > 1e-9:
            raise ValueError("tenant weights must sum to 1")


class AdmissionController:
    """Bounded in-flight ops with per-tenant round-robin fairness.

    ``acquire`` parks the calling session when the engine is at its
    concurrency limit; ``release`` grants the freed slot to the next
    waiting *tenant* in round-robin order (FIFO within a tenant), so one
    chatty tenant class cannot starve the others out of admission.

    With ``live_nodes`` attached the limit is *per serving node*: the
    effective slot count is ``limit x live_nodes()``, so scaling the
    multiplex out genuinely relieves admission pressure (the autoscaler
    calls :meth:`kick` after admitting a node) and draining a node
    shrinks capacity as its slots release.
    """

    def __init__(self, scheduler: SessionScheduler, limit: int,
                 metrics: MetricsRegistry,
                 live_nodes: "Optional[Callable[[], int]]" = None) -> None:
        self.scheduler = scheduler
        self.limit = limit
        self.metrics = metrics
        self.live_nodes = live_nodes
        self.in_flight = 0
        self._queues: "Dict[str, Deque[Session]]" = {}
        self._ring: "Deque[str]" = deque()

    def effective_limit(self) -> int:
        if self.live_nodes is None:
            return self.limit
        return self.limit * max(1, self.live_nodes())

    def acquire(self, session: Session, tenant: str) -> float:
        """Take a slot, waiting if needed; returns seconds spent waiting."""
        if self.in_flight < self.effective_limit():
            self.in_flight += 1
            return 0.0
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._ring.append(tenant)
        queue.append(session)
        started = self.scheduler.clock.now()
        self.scheduler.suspend(session)
        waited = self.scheduler.clock.now() - started
        self.metrics.counter("admission_waits").increment()
        self.metrics.counter(f"admission_waits:{tenant}").increment()
        self.metrics.histogram("admission_wait_seconds").observe(waited)
        return waited

    def queue_depth(self) -> int:
        """Sessions currently parked waiting for admission (autoscale signal)."""
        return sum(len(queue) for queue in self._queues.values())

    def release(self) -> None:
        """Free a slot; hand it to the next waiter, fairly across tenants."""
        if self.in_flight > self.effective_limit():
            # A node drained away while this op ran: retire the excess
            # slot instead of transferring it.
            self.in_flight -= 1
            return
        for __ in range(len(self._ring)):
            tenant = self._ring[0]
            self._ring.rotate(-1)
            queue = self._queues[tenant]
            if queue:
                # The slot transfers to the waiter: in_flight is unchanged.
                self.scheduler.resume(queue.popleft())
                return
        self.in_flight -= 1

    def kick(self) -> None:
        """Admit waiters into capacity that appeared out of band.

        ``release`` only ever transfers an existing slot; when a
        scale-out raises the effective limit, parked sessions would
        otherwise wait for the next release.  Grants stay round-robin
        across tenants, one waiter per fresh slot.
        """
        while self.in_flight < self.effective_limit():
            resumed = False
            for __ in range(len(self._ring)):
                tenant = self._ring[0]
                self._ring.rotate(-1)
                queue = self._queues[tenant]
                if queue:
                    self.scheduler.resume(queue.popleft())
                    self.in_flight += 1
                    resumed = True
                    break
            if not resumed:
                return


class LoadHarness:
    """Builds the engine, spawns the tenant sessions, renders the summary."""

    def __init__(self, config: "Optional[LoadConfig]" = None) -> None:
        self.config = config or LoadConfig()
        cfg = self.config
        self._wall_started = time.monotonic()
        self.multiplex: "Optional[Multiplex]" = None
        self.router: "Optional[NodeRouter]" = None
        if cfg.nodes == 1 and cfg.autoscale is None:
            # Single-node runs keep the exact pre-multiplex path: the
            # golden regression pins this byte-for-byte.
            self.db, self.store, self.load_seconds = load_engine(
                cfg.instance_type, "s3", cfg.scale_factor,
                seed=cfg.seed,
            )
        else:
            self.multiplex, self.store, self.load_seconds = (
                self._load_multiplex()
            )
            self.db = self.multiplex.coordinator
            self.router = NodeRouter()
            self.router.add(COORDINATOR_ID, self.db)
            for node in self.multiplex.secondaries():
                self.router.add(node.node_id, node)
        self._rng = DeterministicRng(cfg.seed, "load-harness")
        self.metrics = MetricsRegistry()
        self.scheduler = self.db.new_session_scheduler()
        self.admission: "Optional[AdmissionController]" = (
            AdmissionController(
                self.scheduler, cfg.admission_limit, self.metrics,
                live_nodes=(
                    self.router.live_count
                    if self.router is not None else None
                ),
            )
            if cfg.admission_limit > 0 else None
        )
        self._stage_of: "Dict[int, int]" = {}       # session_id -> stage
        self._stage_windows: "List[Tuple[float, float]]" = []
        self._stage_sessions: "List[int]" = []
        self._churn_created: "Dict[str, int]" = {}  # object -> next page
        # (finish_time, tenant, latency, met_slo) per op; the autoscaler's
        # trailing-attainment signal and the pre-warm benchmark read it.
        self._op_log: "List[Tuple[float, str, float, bool]]" = []
        self._workload_remaining = cfg.sessions
        self._controller: "Optional[AutoscaleController]" = None
        self._setup_lookup_bank()
        self._cold_caches()
        self._workload_started = self.db.clock.now()

    # -- setup ---------------------------------------------------------- #

    def _load_multiplex(self) -> "Tuple[Multiplex, ColumnStore, float]":
        """A TPC-H-loaded multiplex: bench-sized coordinator + secondaries.

        Secondary nodes mirror the coordinator's bench sizing (buffer,
        OCM, NIC, vcpus) so a static-N run is N of the same machine —
        the comparison the $/query ablation needs.
        """
        cfg = self.config
        base = bench_config(
            cfg.instance_type, "s3", cfg.scale_factor, seed=cfg.seed
        )
        mux = Multiplex(base, MultiplexConfig(
            writers=cfg.nodes - 1,
            secondary_buffer_bytes=base.buffer_capacity_bytes,
            secondary_ocm_bytes=base.ocm_capacity_bytes,
            secondary_ocm_ssd_count=base.ocm_ssd_count,
            secondary_nic_gbits=base.nic_gbits,
            secondary_vcpus=base.vcpus,
        ))
        db = mux.coordinator
        db.cpu.parallel_fraction = CPU_PARALLEL_FRACTION
        for node in mux.secondaries():
            node.cpu.parallel_fraction = CPU_PARALLEL_FRACTION
        store = ColumnStore(db)
        started = db.clock.now()
        load_tpch(store, cfg.scale_factor, partitions=BENCH_PARTITIONS,
                  rows_per_page=BENCH_ROWS_PER_PAGE)
        return mux, store, db.clock.now() - started

    def _setup_lookup_bank(self) -> None:
        """A small shared object the point-lookup tenant reads pages of."""
        db = self.db
        db.create_object(LOOKUP_BANK)
        txn = db.begin()
        for page in range(self.config.lookup_pages):
            db.write_page(txn, LOOKUP_BANK, page, (b"pb-%06d|" % page) * 64)
        db.commit(txn)

    def _cold_caches(self) -> None:
        self.db.buffer.invalidate_all()
        if self.db.ocm is not None:
            self.db.ocm.drain_all()
            self.db.ocm.invalidate_all()
        if self.multiplex is not None:
            for node in self.multiplex.secondaries():
                node.buffer.invalidate_all()
                if node.ocm is not None:
                    node.ocm.drain_all()
                    node.ocm.invalidate_all()

    # -- arrivals -------------------------------------------------------- #

    def _stage_plan(self) -> "List[int]":
        """Sessions per ramp stage (closed loops are a single stage)."""
        cfg = self.config
        stages = 1 if cfg.profile == "closed" else cfg.stages
        base, extra = divmod(cfg.sessions, stages)
        return [base + (1 if s < extra else 0) for s in range(stages)]

    def _arrival_times(self) -> "List[Tuple[float, int]]":
        """Deterministic (arrival_time, stage) per session, in spawn order.

        Open-loop stages ramp the offered rate: stage ``s`` (1-based)
        draws inter-arrival gaps at ``s * arrival_rate``.  The bursty
        profile duty-cycles each stage's rate: inside the burst window of
        every ``burst_period`` the rate is multiplied by ``burst_factor``,
        outside it the residual rate keeps the stage average comparable.
        """
        cfg = self.config
        plan = self._stage_plan()
        if cfg.profile == "closed":
            self._stage_windows.append((0.0, 0.0))
            self._stage_sessions.append(cfg.sessions)
            return [(0.0, 1)] * cfg.sessions
        rng = self._rng.substream("arrivals")
        arrivals: "List[Tuple[float, int]]" = []
        cursor = 0.0
        for index, count in enumerate(plan):
            stage = index + 1
            stage_rate = cfg.arrival_rate * stage
            window_start = cursor
            for __ in range(count):
                rate = stage_rate
                if cfg.profile == "bursty":
                    phase = cursor % cfg.burst_period
                    in_burst = phase < cfg.burst_duty * cfg.burst_period
                    if in_burst:
                        rate = stage_rate * cfg.burst_factor
                    else:
                        off_scale = max(
                            1e-6,
                            (1.0 - cfg.burst_duty * cfg.burst_factor)
                            / max(1e-6, 1.0 - cfg.burst_duty),
                        )
                        rate = stage_rate * off_scale
                cursor += rng.expovariate(rate)
                arrivals.append((cursor, stage))
            self._stage_windows.append((window_start, cursor))
            self._stage_sessions.append(count)
        return arrivals

    def _pick_tenants(self) -> "List[TenantSpec]":
        rng = self._rng.substream("tenant-mix")
        tenants = list(self.config.tenants)
        picks: "List[TenantSpec]" = []
        for __ in range(self.config.sessions):
            draw = rng.random()
            acc = 0.0
            chosen = tenants[-1]
            for spec in tenants:
                acc += spec.weight
                if draw < acc:
                    chosen = spec
                    break
            picks.append(chosen)
        return picks

    # -- the session program -------------------------------------------- #

    def _session_body(self, spec: TenantSpec, stage: int):
        def body(session: Session) -> None:
            rng = self._rng.substream(f"session/{session.session_id}")
            clock = self.db.clock
            try:
                for op_index in range(spec.ops_per_session):
                    if op_index and spec.think_mean > 0:
                        session.sleep(rng.expovariate(1.0 / spec.think_mean))
                    waited = 0.0
                    if self.admission is not None:
                        waited = self.admission.acquire(session, spec.name)
                    started = clock.now()
                    try:
                        self._run_op(spec, session, rng)
                    except Exception:
                        self.metrics.counter("ops_failed").increment()
                        self.metrics.counter(
                            f"ops_failed:{spec.name}"
                        ).increment()
                    else:
                        self.metrics.counter("ops_completed").increment()
                    finally:
                        if self.admission is not None:
                            self.admission.release()
                    latency = clock.now() - started
                    # Latency histograms report in-engine service time;
                    # the SLO is judged end to end — a session parked on
                    # admission is still a client waiting for its answer.
                    response = latency + waited
                    if response <= spec.slo_seconds:
                        self.metrics.counter(
                            f"ops_within_slo:{spec.name}"
                        ).increment()
                    self.metrics.histogram(
                        f"latency:{spec.name}"
                    ).observe(latency)
                    self.metrics.histogram(
                        f"latency:stage{stage}"
                    ).observe(latency)
                    if self.router is not None:
                        self._op_log.append((
                            clock.now(), spec.name, response,
                            response <= spec.slo_seconds,
                        ))
            finally:
                # The autoscale controller's exit condition: it must stop
                # polling once the workload drains or the scheduler would
                # report a deadlock.
                self._workload_remaining -= 1
        return body

    def _run_op(self, spec: TenantSpec, session: Session,
                rng: DeterministicRng) -> None:
        if self.router is not None:
            node_id, target = self.router.acquire()
        else:
            node_id, target = COORDINATOR_ID, self.db
        try:
            self._run_op_on(spec, session, rng, target)
        finally:
            if self.router is not None:
                self.router.release(node_id)
                self.metrics.counter(f"ops_by_node:{node_id}").increment()

    def _run_op_on(self, spec: TenantSpec, session: Session,
                   rng: DeterministicRng, target) -> None:
        db = target
        if spec.op == "lookup":
            page = rng.randint(0, self.config.lookup_pages - 1)
            txn = db.begin()
            try:
                db.read_page(txn, LOOKUP_BANK, page)
            finally:
                db.commit(txn)
        elif spec.op == "query":
            number = rng.choice(list(self.config.query_numbers))
            with QueryContext(db) as ctx:
                run_query(ctx, number, self.config.scale_factor)
        else:  # churn: append pages to this session's own object
            name = f"churn/{session.session_id}"
            next_page = self._churn_created.get(name)
            if next_page is None:
                # Catalog mutations stay on the coordinator (the multiplex
                # shares one catalog); page writes go through the target.
                self.db.create_object(name)
                next_page = 0
            txn = db.begin()
            try:
                for offset in range(self.config.churn_pages_per_op):
                    payload = (b"ch-%06d-%04d|" % (session.session_id,
                                                   next_page + offset)) * 48
                    db.write_page(txn, name, next_page + offset, payload)
                db.commit(txn)
                self._churn_created[name] = (
                    next_page + self.config.churn_pages_per_op
                )
            except Exception:
                db.rollback(txn)
                raise

    # -- autoscale signals ------------------------------------------------ #

    def _autoscale_signals(self) -> AutoscaleSignals:
        """Live load signals, all pure functions of the virtual clock."""
        cfg = self.config
        assert cfg.autoscale is not None and self.router is not None
        now = self.db.clock.now()
        horizon = now - cfg.autoscale.slo_window_seconds
        attained = total = 0
        for finished, __, ___, met in reversed(self._op_log):
            if finished < horizon:
                break
            total += 1
            if met:
                attained += 1
        return AutoscaleSignals(
            queue_depth=(
                self.admission.queue_depth()
                if self.admission is not None else 0
            ),
            runnable_backlog=self.scheduler.runnable_backlog(),
            slo_attainment=(attained / total) if total else None,
            nodes=self.router.live_count(),
        )

    # -- driving --------------------------------------------------------- #

    def run(self) -> "Dict[str, object]":
        """Spawn every session per the arrival plan; drain; summarize."""
        tenants = self._pick_tenants()
        arrivals = self._arrival_times()
        # Arrival times are relative to the end of setup (TPC-H load and
        # the lookup bank already consumed virtual time).
        epoch = self._workload_started
        for (when, stage), spec in zip(arrivals, tenants):
            session = self.scheduler.spawn(
                self._session_body(spec, stage),
                at=epoch + when,
                tenant=spec.name,
            )
            self._stage_of[session.session_id] = stage
        if self.config.autoscale is not None:
            assert self.multiplex is not None and self.router is not None
            self._controller = AutoscaleController(
                self.config.autoscale,
                multiplex=self.multiplex,
                router=self.router,
                clock=self.db.clock,
                epoch=epoch,
                signals=self._autoscale_signals,
                done=lambda: self._workload_remaining <= 0,
                metrics=self.metrics,
                prewarm_source=self.db.ocm,
                on_change=(
                    self.admission.kick
                    if self.admission is not None else None
                ),
            )
            self.scheduler.spawn(
                self._controller.body, at=epoch, name="autoscale"
            )
        self.scheduler.run()
        return self.summary()

    # -- reporting -------------------------------------------------------- #

    @staticmethod
    def _tail(histogram) -> "Dict[str, float]":
        return {
            "mean": round(histogram.mean, 6),
            "p50": round(histogram.percentile(50.0), 6),
            "p95": round(histogram.percentile(95.0), 6),
            "p99": round(histogram.percentile(99.0), 6),
            "max": round(max(histogram.values), 6) if histogram.count else 0.0,
        }

    def summary(self) -> "Dict[str, object]":
        cfg = self.config
        counters = self.metrics.snapshot()
        clock_seconds = self.db.clock.now() - self._workload_started
        tenant_sessions: "Dict[str, int]" = {}
        for session in self.scheduler.sessions:
            tenant_sessions[session.tenant] = (
                tenant_sessions.get(session.tenant, 0) + 1
            )
        tenants: "Dict[str, object]" = {}
        for spec in cfg.tenants:
            histogram = self.metrics.histogram(f"latency:{spec.name}")
            attained = int(
                counters.get(f"ops_within_slo:{spec.name}", 0.0)
            )
            tenants[spec.name] = {
                "sessions": tenant_sessions.get(spec.name, 0),
                "ops": histogram.count,
                "failed": int(counters.get(f"ops_failed:{spec.name}", 0.0)),
                "latency_seconds": self._tail(histogram),
                "slo_seconds": spec.slo_seconds,
                "slo_attainment": (
                    round(attained / histogram.count, 6)
                    if histogram.count else None
                ),
                "throughput_ops_per_second": (
                    round(histogram.count / clock_seconds, 6)
                    if clock_seconds > 0 else 0.0
                ),
            }
        saturation: "List[Dict[str, object]]" = []
        stage_count = 1 if cfg.profile == "closed" else cfg.stages
        for index in range(stage_count):
            stage = index + 1
            histogram = self.metrics.histogram(f"latency:stage{stage}")
            window = (
                self._stage_windows[index]
                if index < len(self._stage_windows)
                else (0.0, clock_seconds)
            )
            window_seconds = max(window[1] - window[0], 1e-9)
            offered = (
                cfg.arrival_rate * stage
                if cfg.profile != "closed"
                else None
            )
            saturation.append({
                "stage": stage,
                "sessions": (
                    self._stage_sessions[index]
                    if index < len(self._stage_sessions)
                    else cfg.sessions
                ),
                "offered_sessions_per_second": (
                    round(offered, 6) if offered is not None else None
                ),
                "arrival_window_seconds": [
                    round(window[0], 6), round(window[1], 6)
                ],
                "realized_arrival_rate": (
                    round(
                        (self._stage_sessions[index]
                         if index < len(self._stage_sessions)
                         else cfg.sessions)
                        / window_seconds, 6
                    )
                    if cfg.profile != "closed" else None
                ),
                "ops": histogram.count,
                "latency_seconds": self._tail(histogram),
            })
        admission: "Optional[Dict[str, object]]" = None
        if self.admission is not None:
            waits = self.metrics.histogram("admission_wait_seconds")
            admission = {
                "limit": cfg.admission_limit,
                "waits": int(counters.get("admission_waits", 0.0)),
                "waits_by_tenant": {
                    spec.name: int(
                        counters.get(f"admission_waits:{spec.name}", 0.0)
                    )
                    for spec in cfg.tenants
                },
                "wait_seconds": self._tail(waits),
            }
        routing: "Optional[Dict[str, int]]" = None
        if self.router is not None:
            routing = {
                node_id: int(counters.get(f"ops_by_node:{node_id}", 0.0))
                for node_id in self.router.ever_ids
            }
        autoscale: "Optional[Dict[str, object]]" = None
        if cfg.autoscale is not None and self._controller is not None:
            series = self.metrics.series("autoscale_node_count")
            timeline = [
                [round(when, 6), int(value)]
                for when, value in series.samples
            ]
            per_stage_nodes: "List[Optional[int]]" = []
            for window in self._stage_windows:
                at_end = series.value_at(window[1])
                per_stage_nodes.append(
                    int(at_end) if at_end is not None else None
                )
            autoscale = {
                "events": self._controller.events,
                "node_count_timeline": timeline,
                "per_stage_nodes": per_stage_nodes,
                "final_nodes": self.router.live_count(),
                "node_seconds": self._node_seconds(clock_seconds),
                "decisions": {
                    decision: int(counters.get(
                        f"autoscale_decisions:{decision}", 0.0
                    ))
                    for decision in ("out", "in", "hold")
                },
                "scale_outs": int(counters.get("autoscale_scale_outs", 0.0)),
                "scale_ins": int(counters.get("autoscale_scale_ins", 0.0)),
            }
        return {
            "schema": SUMMARY_SCHEMA,
            "config": {
                "sessions": cfg.sessions,
                "seed": cfg.seed,
                "profile": cfg.profile,
                "arrival_rate": cfg.arrival_rate,
                "stages": stage_count,
                "admission_limit": cfg.admission_limit,
                "scale_factor": cfg.scale_factor,
                "instance_type": cfg.instance_type,
                "tenant_mix": [asdict(spec) for spec in cfg.tenants],
                "nodes": cfg.nodes,
                "autoscale": (
                    asdict(cfg.autoscale)
                    if cfg.autoscale is not None else None
                ),
            },
            "clock_seconds": round(clock_seconds, 6),
            "ops": {
                "completed": int(counters.get("ops_completed", 0.0)),
                "failed": int(counters.get("ops_failed", 0.0)),
            },
            "tenants": tenants,
            "saturation": saturation,
            "admission": admission,
            "routing": routing,
            "autoscale": autoscale,
            "scheduler": {
                "sessions": len(self.scheduler.sessions),
                "handoffs": self.scheduler.handoffs,
            },
        }

    def _node_seconds(self, clock_seconds: float) -> float:
        """Step-function integral of the live node count over the run.

        This is the cost driver: USD = node_seconds / 3600 x the instance
        rate (plus object-store request charges).  The timeline starts at
        the configured node count and steps at every recorded sample.
        """
        series = self.metrics.series("autoscale_node_count")
        total = 0.0
        cursor = 0.0
        level = float(self.config.nodes)
        for when, value in series.samples:
            clamped = min(max(when, 0.0), clock_seconds)
            total += level * (clamped - cursor)
            cursor = clamped
            level = value
        total += level * max(0.0, clock_seconds - cursor)
        return round(total, 6)

    @property
    def wall_seconds(self) -> float:
        return time.monotonic() - self._wall_started


def run_load(config: "Optional[LoadConfig]" = None) -> "Dict[str, object]":
    """Build a harness, run it, return the deterministic summary."""
    return LoadHarness(config).run()
