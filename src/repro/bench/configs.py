"""Scaled benchmark configurations.

The paper runs TPC-H at scale factor 1000 on real EC2 hardware; the
benchmarks run a scaled-down dataset against hardware whose *rates*
(bandwidths, IOPS, CPU ops/s, request rates) are slowed by the same factor
(``rate_scale = sf / 1000``) while latencies stay real.  Shrinking data and
rates together preserves which resource binds, so the virtual-second
results are directly comparable, in shape, to the paper's tables.

Per-instance sizing follows the paper's deployment recipe: half of RAM for
the buffer manager, all local SSDs RAID-0 for the OCM, the published NIC
bandwidth, a 1 TB gp2 volume for the EBS runs and a usage-billed EFS volume
for the EFS runs.  RAM/SSD capacities shrink with the data so cache-to-data
ratios match the paper's.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.columnar import ColumnStore
from repro.costs.instances import INSTANCE_CATALOG, InstanceProfile
from repro.engine import Database, DatabaseConfig
from repro.tpch import load_tpch

GIB = 1024 ** 3
TIB = 1024 ** 4

# Default benchmark scale factor (the paper uses SF 1000).
BENCH_SCALE_FACTOR = 0.01
PAPER_SCALE_FACTOR = 1000.0

# Base CPU throughput (ops/second at rate_scale == 1), calibrated so the
# SF-1000-equivalent load and query times land in the paper's range.
CPU_OPS_PER_SECOND = 25e6
CPU_PARALLEL_FRACTION = 0.995

BENCH_PAGE_SIZE = 16 * 1024
BENCH_PARTITIONS = 4
BENCH_ROWS_PER_PAGE = 1024

# Cache sizing divisors, calibrated against the paper's observations:
# the buffer covers a small fraction of the logical data (the paper's
# 192 GB of buffer vs ~2 TB of logical data), and the OCM's effective
# working capacity sits near the touched-data volume (Table 5's eviction
# counts put its hit rate at 74.5%).
BUFFER_DIVISOR = 1.5
BUFFER_FLOOR = 768 * 1024
OCM_DIVISOR = 30
OCM_FLOOR = 1280 * 1024


# The PR 5 write-path stack, as one overrides bundle: AIMD-controlled
# upload window, adjacent-key PUT coalescing, and group commit flush.
# Backpressure (ocm_max_pending_uploads) is deliberately NOT part of the
# bundle — it trades load latency for a bounded queue and is a deployment
# choice, not a pure optimisation.  Usage:
#     load_engine(..., **WRITE_PATH_OPTIMIZED)
WRITE_PATH_OPTIMIZED: "Dict[str, object]" = dict(
    adaptive_upload_window=True,
    coalesce_puts=True,
    group_commit_flush=True,
)

# The PR 8 read-path stack: numpy-backed batch executor with
# morsel-driven CPU charging and the session-level decoded-batch cache.
# Requires numpy (the [perf] extra); Database raises a clear
# VectorizedUnavailableError at construction when it is missing.  Usage:
#     load_engine(..., **VECTORIZED_EXECUTOR)
VECTORIZED_EXECUTOR: "Dict[str, object]" = dict(
    vectorized_executor=True,
)


def bench_config(
    instance_type: str = "m5ad.24xlarge",
    user_volume: str = "s3",
    scale_factor: float = BENCH_SCALE_FACTOR,
    ocm_enabled: bool = True,
    **overrides: object,
) -> DatabaseConfig:
    """A DatabaseConfig mirroring one of the paper's deployments."""
    instance = INSTANCE_CATALOG[instance_type]
    rate_scale = scale_factor / PAPER_SCALE_FACTOR
    size_scale = rate_scale  # capacities shrink with the data

    if user_volume == "ebs":
        volume_bytes = 1 * TIB  # the paper's 1 TB gp2 volume
    elif user_volume == "efs":
        # EFS is billed by utilization; its burst throughput tracks the
        # data stored (~0.5 TiB compressed at SF 1000, bursting ~3x).
        volume_bytes = int(1.5 * TIB)
    else:
        volume_bytes = 1 * TIB

    settings: "Dict[str, object]" = dict(
        instance_type=instance_type,
        vcpus=instance.vcpus,
        nic_gbits=instance.nic_gbits,
        buffer_capacity_bytes=max(
            BUFFER_FLOOR,
            int(instance.buffer_cache_bytes * size_scale / BUFFER_DIVISOR),
        ),
        ocm_enabled=ocm_enabled and user_volume == "s3" and instance.ssd_count > 0,
        ocm_capacity_bytes=max(
            OCM_FLOOR,
            int(instance.total_ssd_bytes * size_scale / OCM_DIVISOR),
        ),
        ocm_ssd_count=max(1, instance.ssd_count),
        user_volume=user_volume,
        user_volume_size_bytes=volume_bytes,
        page_size=BENCH_PAGE_SIZE,
        cpu_ops_per_second=CPU_OPS_PER_SECOND,
        rate_scale=rate_scale,
    )
    settings.update(overrides)  # explicit overrides win
    return DatabaseConfig(**settings)  # type: ignore[arg-type]


def make_engine(
    instance_type: str = "m5ad.24xlarge",
    user_volume: str = "s3",
    scale_factor: float = BENCH_SCALE_FACTOR,
    ocm_enabled: bool = True,
    tracer: "Optional[object]" = None,
    **overrides: object,
) -> Database:
    """Build an engine; ``tracer`` shares one Tracer across bench engines.

    A driver comparing several configurations passes the same handle to
    each ``make_engine``/``load_engine`` call so every engine's spans land
    in one trace (per-engine layers stay distinguishable via span attrs).
    """
    config = bench_config(instance_type, user_volume, scale_factor,
                          ocm_enabled, **overrides)
    database = Database(config)
    database.cpu.parallel_fraction = CPU_PARALLEL_FRACTION
    if tracer is not None:
        database.attach_tracer(tracer)
    return database


def load_engine(
    instance_type: str = "m5ad.24xlarge",
    user_volume: str = "s3",
    scale_factor: float = BENCH_SCALE_FACTOR,
    ocm_enabled: bool = True,
    tracer: "Optional[object]" = None,
    **overrides: object,
) -> "Tuple[Database, ColumnStore, float]":
    """Build an engine and load TPC-H into it; returns (db, store, load_s)."""
    database = make_engine(instance_type, user_volume, scale_factor,
                           ocm_enabled, tracer=tracer, **overrides)
    store = ColumnStore(database)
    started = database.clock.now()
    load_tpch(store, scale_factor, partitions=BENCH_PARTITIONS,
              rows_per_page=BENCH_ROWS_PER_PAGE)
    return database, store, database.clock.now() - started
