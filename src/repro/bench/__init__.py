"""Benchmark harness: scaled configurations and experiment drivers.

Each module under :mod:`repro.bench` drives one of the paper's tables or
figures; ``benchmarks/`` contains thin pytest-benchmark wrappers around
them.  See DESIGN.md's per-experiment index.
"""

from repro.bench.configs import (
    BENCH_SCALE_FACTOR,
    bench_config,
    make_engine,
    load_engine,
)
from repro.bench.report import format_table, geomean

__all__ = [
    "BENCH_SCALE_FACTOR",
    "bench_config",
    "make_engine",
    "load_engine",
    "format_table",
    "geomean",
]
