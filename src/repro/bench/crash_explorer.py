"""Seeded crash exploration: kill the engine at every registered point.

Each *episode* builds a small engine, runs a fixed churn workload (multi-
page commits, a buffer-overflowing wide transaction, DDL, a rollback, a
snapshot, a mid-episode crash/restart), arms exactly one crash point, and
lets the workload run into it.  Whenever the point fires, the raised
:class:`~repro.sim.crashpoints.SimulatedCrash` is translated into ordinary
crash semantics and the engine is restarted — repeatedly if the point
fires again during recovery.  After a final drain (restart GC, chain
collection, retention expiry, reap) the episode asserts the paper's
correctness claims:

1. **No committed data lost** — every page image the workload knows to be
   committed reads back byte-identical through cold caches.  Commits the
   crash interrupted are resolved by probing: the page matches either the
   pre-commit or the post-commit image, never a third thing.
2. **No MISSING objects** — the :class:`~repro.core.audit.StoreAuditor`
   finds every catalog- or snapshot-referenced object on the store.
3. **LEAKED drains to zero** — after restart GC and retention reap,
   nothing on the store is uncovered by metadata.

A deliberately broken GC (:func:`install_broken_gc`) inverts the third
assertion: the auditor *must* flag leaks, proving fsck actually detects
the failure mode it exists for.

Episodes are deterministic: same point + same seed -> same outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.audit import AuditError, AuditReport, StoreAuditor
from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.engine import Database, DatabaseConfig
from repro.objectstore.replicated import ReplicationConfig
from repro.sim.crashpoints import CRASH_POINTS, SimulatedCrash
from repro.sim.rng import DeterministicRng

PAGE_SIZE = 4096
PAYLOAD_BYTES = 1024
# Buffer frames hold the written payload bytes; 16 payloads' worth of
# capacity means the wide transaction below overflows it mid-transaction.
BUFFER_FRAMES = 16
PAGES = 3
# Enough dirty pages in one transaction to overflow the buffer, forcing
# write-back eviction (and therefore an OCM upload queue to crash into).
WIDE_PAGES = 2 * BUFFER_FRAMES
RETENTION_SECONDS = 30.0
MAX_RECOVERY_ATTEMPTS = 8


@dataclass
class EpisodeResult:
    """Outcome of one crash-and-recover episode."""

    crash_point: "Optional[str]"
    seed: int
    mode: str = "churn"
    fired: int = 0
    crashes: int = 0
    violations: "List[str]" = field(default_factory=list)
    report: "Optional[AuditReport]" = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> "Dict[str, object]":
        return {
            "crash_point": self.crash_point,
            "seed": self.seed,
            "mode": self.mode,
            "fired": self.fired,
            "crashes": self.crashes,
            "ok": self.ok,
            "violations": list(self.violations),
            "audit": self.report.to_dict() if self.report else None,
        }


# Crash points living inside the adaptive write pipeline only exist on
# code paths the default configuration never takes; their episodes run
# the same churn workload with the pipeline knobs on.
WRITE_PIPELINE_PREFIXES = ("ocm.batch_flush.", "client.put_range.")
WRITE_PIPELINE_OVERRIDES: "Dict[str, object]" = dict(
    adaptive_upload_window=True,
    coalesce_puts=True,
    group_commit_flush=True,
)


def base_config(
    seed: int, overrides: "Optional[Dict[str, object]]" = None
) -> DatabaseConfig:
    """A deliberately tiny engine: small pages, a buffer that thrashes."""
    settings: "Dict[str, object]" = dict(
        seed=seed,
        page_size=PAGE_SIZE,
        buffer_capacity_bytes=BUFFER_FRAMES * PAYLOAD_BYTES,
        ocm_capacity_bytes=4 * 1024 * 1024,
        # Small system volume: recovery decodes its freelist bitmap on
        # every restart, and episodes restart many times.
        system_volume_size_bytes=32 * 1024 * 1024,
        retention_seconds=RETENTION_SECONDS,
    )
    if overrides:
        settings.update(overrides)
    return DatabaseConfig(**settings)  # type: ignore[arg-type]


def build_engine(
    seed: int, overrides: "Optional[Dict[str, object]]" = None
) -> Database:
    return Database(base_config(seed, overrides))


def install_broken_gc(db: Database) -> None:
    """Sabotage GC: superseded pages are neither freed nor retained.

    The regression fixture for the auditor — a database run under this
    must end with LEAKED objects that ``repro fsck`` flags.  Re-install
    after every restart: recovery builds a fresh transaction manager.
    """
    db.txn_manager._apply_rf = lambda entry: 0  # type: ignore[method-assign]


def _payload(obj: str, page: int, gen: int, seed: int) -> bytes:
    header = f"{obj}:{page}:{gen}:{seed}:".encode()
    body = bytes(
        (page * 131 + gen * 17 + seed * 3 + i * 7) % 251
        for i in range(PAYLOAD_BYTES - len(header))
    )
    return header + body


def registered_points() -> "List[str]":
    """Every registered crash point (forces all instrumented imports)."""
    import repro.core.autoscale  # noqa: F401  (registers the prewarm point)
    import repro.core.multiplex  # noqa: F401  (imports the whole engine)
    import repro.core.scrub  # noqa: F401  (registers the scrub points)

    return CRASH_POINTS.names()


# ---------------------------------------------------------------------- #
# the churn episode (single node)
# ---------------------------------------------------------------------- #

def run_churn_episode(
    crash_point_name: "Optional[str]" = None,
    seed: int = 0,
    broken_gc: bool = False,
    arm_skip: int = 0,
    config_overrides: "Optional[Dict[str, object]]" = None,
    deep: bool = False,
) -> EpisodeResult:
    """One seeded churn workload crashed (maybe repeatedly) at one point."""
    CRASH_POINTS.disarm_all()
    result = EpisodeResult(crash_point=crash_point_name, seed=seed,
                           mode="churn")
    db = build_engine(seed, config_overrides)
    if broken_gc:
        install_broken_gc(db)
    expected: "Dict[Tuple[str, int], bytes]" = {}

    def recover() -> None:
        for __ in range(MAX_RECOVERY_ATTEMPTS):
            if not db.crashed:
                break
            try:
                db.restart()
            except SimulatedCrash as exc:
                result.crashes += 1
                db.crash_from(exc)
        else:
            result.violations.append("recovery did not converge")
        if broken_gc:
            install_broken_gc(db)

    def guarded(fn: "Callable[[], object]") -> bool:
        """Run one workload step; on a simulated crash, recover. True if
        the step ran to completion."""
        try:
            fn()
            return True
        except SimulatedCrash as exc:
            result.crashes += 1
            db.crash_from(exc)
            recover()
            return False

    def probe(obj: str, page: int) -> "Optional[bytes]":
        txn = db.begin()
        try:
            data: "Optional[bytes]" = db.read_page(txn, obj, page)
        except SimulatedCrash:
            raise
        except Exception:
            data = None
        try:
            db.rollback(txn)
        except SimulatedCrash:
            raise
        except Exception:
            pass
        return data

    def commit_generation(obj: str, gen: int, pages: int = PAGES,
                          double_write: bool = False) -> None:
        staged = {p: _payload(obj, p, gen, seed) for p in range(pages)}

        def work() -> None:
            txn = db.begin()
            if double_write:
                # Same-transaction supersede: local garbage, reclaimed
                # without telling the coordinator (Section 3.3).
                db.write_page(txn, obj, 0, _payload(obj, 0, gen, seed + 1))
            for p, data in staged.items():
                db.write_page(txn, obj, p, data)
            db.commit(txn)

        if guarded(work):
            for p, data in staged.items():
                expected[(obj, p)] = data
            return
        # The crash interrupted the commit: resolve whether it landed by
        # probing page 0 against both possible images.
        got = probe(obj, 0)
        if got == staged[0]:
            for p, data in staged.items():
                if p != 0 and probe(obj, p) != data:
                    result.violations.append(
                        f"torn commit: {obj!r} gen {gen} page {p} does not "
                        "match the committed image"
                    )
            for p, data in staged.items():
                expected[(obj, p)] = data
        elif got == expected.get((obj, 0)):
            pass  # the commit never landed; the old generation survives
        else:
            result.violations.append(
                f"atomicity: {obj!r} gen {gen} page 0 matches neither the "
                "pre-commit nor the post-commit image"
            )

    point = None
    fired_before = 0
    try:
        # --- pre-arm baseline: generation 0 is always fully committed --- #
        db.create_object("t0")
        db.create_object("t1")
        commit_generation("t0", 0)
        commit_generation("t1", 0)

        if crash_point_name is not None:
            point = CRASH_POINTS.point(crash_point_name)
            fired_before = point.fired
            CRASH_POINTS.arm(crash_point_name, skip=arm_skip)

        # --- churn ------------------------------------------------------ #
        commit_generation("t0", 1, double_write=True)
        commit_generation("t1", 1)
        guarded(lambda: db.create_object("extra"))
        # One wide transaction overflows the buffer: dirty eviction queues
        # OCM write-backs, which commit must upload (flush_for_commit).
        commit_generation("t0", 2, pages=WIDE_PAGES)
        guarded(db.create_snapshot)
        # Supersede again so the retention FIFO has entries to reap.
        commit_generation("t0", 3)

        def rollback_generation() -> None:
            txn = db.begin()
            for p in range(PAGES):
                db.write_page(txn, "t1", p, _payload("t1", p, 99, seed))
            db.rollback(txn)

        guarded(rollback_generation)

        # Forced mid-episode crash: exercises replay, checkpoint, restart
        # GC and orphan polling while the armed point is still live.
        if not db.crashed:
            db.crash()
        recover()
        commit_generation("t1", 4)

        # --- drain: everything transient must go to zero ---------------- #
        for __ in range(4):
            try:
                if not db.crashed:
                    db.crash()
                recover()
                db.txn_manager.collect_garbage()
                if db.snapshot_manager is not None:
                    db.clock.advance(RETENTION_SECONDS + 1.0)
                    db.snapshot_manager.reap()
                db.txn_manager.collect_garbage()
                break
            except SimulatedCrash as exc:
                result.crashes += 1
                db.crash_from(exc)
        else:
            result.violations.append("drain did not converge")
    finally:
        CRASH_POINTS.disarm_all()
        if point is not None:
            result.fired = point.fired - fired_before

    if db.crashed:
        recover()

    # --- invariant 1: committed data survives cold --------------------- #
    db.node.invalidate_caches()
    if db.ocm is not None:
        db.ocm.invalidate_all()
    for (obj, page), data in sorted(expected.items()):
        if probe(obj, page) != data:
            result.violations.append(
                f"data loss: committed page {obj!r}/{page} unreadable or "
                "altered after recovery"
            )

    # --- invariants 2 and 3: the auditor's verdict ---------------------- #
    try:
        report = StoreAuditor(db).audit(deep=deep)
    except AuditError as exc:
        result.violations.append(f"audit failed: {exc}")
        return result
    result.report = report
    if report.missing or report.snapshot_missing:
        result.violations.append(
            f"MISSING objects after recovery: {len(report.missing)} live, "
            f"{len(report.snapshot_missing)} snapshot-only"
        )
    if deep and (report.corrupt or report.region_corrupt):
        result.violations.append(
            f"CORRUPT objects after recovery: {len(report.corrupt)} "
            f"primary, {len(report.region_corrupt)} regional"
        )
    if broken_gc:
        if not report.leaked:
            result.violations.append(
                "the auditor failed to flag the broken GC's leaked objects"
            )
    elif report.leaked:
        result.violations.append(
            f"LEAKED objects did not drain to zero: {len(report.leaked)}"
        )
    return result


# ---------------------------------------------------------------------- #
# the multiplex episode (secondary restart GC)
# ---------------------------------------------------------------------- #

def run_multiplex_episode(
    crash_point_name: "Optional[str]" = None,
    seed: int = 0,
    arm_skip: int = 0,
) -> EpisodeResult:
    """Crash the coordinator mid restart-GC of a dead writer node."""
    CRASH_POINTS.disarm_all()
    result = EpisodeResult(crash_point=crash_point_name, seed=seed,
                           mode="multiplex")
    mux = Multiplex(base_config(seed), MultiplexConfig(
        writers=1,
        secondary_buffer_bytes=BUFFER_FRAMES * PAYLOAD_BYTES,
        secondary_ocm_bytes=4 * 1024 * 1024,
    ))
    coordinator = mux.coordinator
    writer = mux.node("writer-1")
    expected: "Dict[Tuple[str, int], bytes]" = {}

    coordinator.create_object("t0")
    txn = writer.begin()
    for p in range(PAGES):
        data = _payload("t0", p, 0, seed)
        writer.write_page(txn, "t0", p, data)
        expected[("t0", p)] = data
    writer.commit(txn)

    point = None
    fired_before = 0
    try:
        if crash_point_name is not None:
            point = CRASH_POINTS.point(crash_point_name)
            fired_before = point.fired
            CRASH_POINTS.arm(crash_point_name, skip=arm_skip)
        # Orphan uploads: objects on the shared store whose keys only the
        # writer's active set covers.
        for i in range(3):
            writer.user_dbspace.write_page(
                _payload("orphan", i, 1, seed), commit_mode=True
            )
        writer.crash()
        for __ in range(MAX_RECOVERY_ATTEMPTS):
            try:
                writer.restart()
                break
            except SimulatedCrash as exc:
                result.crashes += 1
                writer.crash_from(exc)
        else:
            result.violations.append("writer restart did not converge")
    finally:
        CRASH_POINTS.disarm_all()
        if point is not None:
            result.fired = point.fired - fired_before

    coordinator.txn_manager.collect_garbage()

    txn = coordinator.begin()
    for (obj, p), data in sorted(expected.items()):
        if coordinator.read_page(txn, obj, p) != data:
            result.violations.append(
                f"data loss: committed page {obj!r}/{p} altered after the "
                "writer's crash"
            )
    coordinator.rollback(txn)

    report = StoreAuditor(coordinator).audit()
    result.report = report
    if report.missing or report.snapshot_missing:
        result.violations.append("MISSING objects after writer restart")
    if report.leaked:
        result.violations.append(
            f"writer restart GC leaked {len(report.leaked)} orphans"
        )
    return result


# ---------------------------------------------------------------------- #
# the scale episode (autoscale: pre-warm admit, drain-and-retire)
# ---------------------------------------------------------------------- #

SCALE_PREWARM_BUDGET = 4 * 1024 * 1024
SCALE_ORPHANS = 2


def run_scale_episode(
    crash_point_name: "Optional[str]" = None,
    seed: int = 0,
    arm_skip: int = 0,
) -> EpisodeResult:
    """Kill a node mid scale-event; prove the scale cycle loses nothing.

    One full autoscale cycle runs by hand: provision a secondary,
    pre-warm its OCM from the coordinator's warm set, commit a
    generation through it, upload orphans only its active set covers,
    then drain-and-retire it.  The armed crash point kills the node
    somewhere inside that cycle; the episode recovers exactly as the
    controller's host would (restart the wounded node — restart GC
    reclaims its orphans — then retire it for real) and retries the
    cycle on a fresh node.  Afterwards: every committed generation reads
    back through the coordinator, and the auditor finds no MISSING and
    no LEAKED objects — a node dying mid-retire leaks nothing.
    """
    from repro.core.autoscale import prewarm_secondary

    CRASH_POINTS.disarm_all()
    result = EpisodeResult(crash_point=crash_point_name, seed=seed,
                           mode="scale")
    mux = Multiplex(base_config(seed), MultiplexConfig(
        writers=1,
        secondary_buffer_bytes=BUFFER_FRAMES * PAYLOAD_BYTES,
        secondary_ocm_bytes=4 * 1024 * 1024,
    ))
    coordinator = mux.coordinator
    writer = mux.node("writer-1")
    expected: "Dict[Tuple[str, int], bytes]" = {}

    def commit_via(node, obj: str, gen: int) -> None:
        txn = node.begin()
        staged = {}
        for p in range(PAGES):
            data = _payload(obj, p, gen, seed)
            node.write_page(txn, obj, p, data)
            staged[(obj, p)] = data
        node.commit(txn)
        expected.update(staged)

    # Baseline, plus a warm coordinator OCM for pre-warm to donate from.
    coordinator.create_object("t0")
    commit_via(writer, "t0", 0)
    txn = coordinator.begin()
    for p in range(PAGES):
        coordinator.read_page(txn, "t0", p)
    coordinator.rollback(txn)

    def recover_node(node) -> None:
        for __ in range(MAX_RECOVERY_ATTEMPTS):
            try:
                node.restart()
                return
            except SimulatedCrash as exc:
                result.crashes += 1
                node.crash_from(exc)
        result.violations.append("node restart did not converge")

    def scale_cycle(gen: int) -> bool:
        """One provision -> prewarm -> serve -> retire cycle; True if it
        ran end to end without the armed point firing."""
        node = mux.add_secondary("writer")
        try:
            prewarm_secondary(node, coordinator.ocm, SCALE_PREWARM_BUDGET)
            commit_via(node, "t0", gen)
            # Orphan uploads: store objects covered only by this node's
            # active set — exactly what a mid-retire death would strand.
            for i in range(SCALE_ORPHANS):
                node.user_dbspace.write_page(
                    _payload("orphan", i, gen, seed), commit_mode=True
                )
            mux.retire_secondary(node.node_id)
            return True
        except SimulatedCrash as exc:
            result.crashes += 1
            if node.node_id not in mux.nodes:
                # The crash hit after detach: the retire itself already
                # completed (flush + GC), nothing to clean up.
                return False
            node.crash_from(exc)
            recover_node(node)
            if not node.crashed:
                try:
                    mux.retire_secondary(node.node_id)
                except SimulatedCrash as inner:
                    result.crashes += 1
                    if node.node_id in mux.nodes:
                        node.crash_from(inner)
                        recover_node(node)
            return False

    point = None
    fired_before = 0
    try:
        if crash_point_name is not None:
            point = CRASH_POINTS.point(crash_point_name)
            fired_before = point.fired
            CRASH_POINTS.arm(crash_point_name, skip=arm_skip)
        for attempt in range(MAX_RECOVERY_ATTEMPTS):
            if scale_cycle(attempt + 1):
                break
        else:
            result.violations.append("scale cycle did not converge")
    finally:
        CRASH_POINTS.disarm_all()
        if point is not None:
            result.fired = point.fired - fired_before

    # Wounded nodes that could not be retired (restart non-convergence)
    # still get their keys reclaimed by coordinator-side GC.
    coordinator.txn_manager.collect_garbage()

    # Invariant 1: every committed generation survives, read cold via
    # the coordinator (retired nodes' caches are gone by construction).
    coordinator.node.invalidate_caches()
    if coordinator.ocm is not None:
        coordinator.ocm.invalidate_all()
    txn = coordinator.begin()
    for (obj, p), data in sorted(expected.items()):
        if coordinator.read_page(txn, obj, p) != data:
            result.violations.append(
                f"data loss: committed page {obj!r}/{p} lost across the "
                "scale cycle"
            )
    coordinator.rollback(txn)

    # Invariants 2 and 3: nothing missing, mid-retire orphans all drained.
    report = StoreAuditor(coordinator).audit()
    result.report = report
    if report.missing or report.snapshot_missing:
        result.violations.append("MISSING objects after the scale episode")
    if report.leaked:
        result.violations.append(
            f"scale episode leaked {len(report.leaked)} objects"
        )
    return result


# ---------------------------------------------------------------------- #
# the restore episode (point-in-time rewind)
# ---------------------------------------------------------------------- #

def run_restore_episode(
    crash_point_name: "Optional[str]" = None,
    seed: int = 0,
    arm_skip: int = 0,
) -> EpisodeResult:
    """Crash during a snapshot restore; either side of the crash must be
    a consistent database (rewound or not — never half of each)."""
    CRASH_POINTS.disarm_all()
    result = EpisodeResult(crash_point=crash_point_name, seed=seed,
                           mode="restore")
    db = build_engine(seed)

    def commit_generation(gen: int) -> "Dict[Tuple[str, int], bytes]":
        staged = {("t0", p): _payload("t0", p, gen, seed)
                  for p in range(PAGES)}
        txn = db.begin()
        for (__, p), data in staged.items():
            db.write_page(txn, "t0", p, data)
        db.commit(txn)
        return staged

    db.create_object("t0")
    gen0 = commit_generation(0)
    snapshot = db.create_snapshot()
    gen1 = commit_generation(1)

    point = None
    fired_before = 0
    completed = False
    try:
        if crash_point_name is not None:
            point = CRASH_POINTS.point(crash_point_name)
            fired_before = point.fired
            CRASH_POINTS.arm(crash_point_name, skip=arm_skip)
        try:
            db.restore_snapshot(snapshot.snapshot_id)
            completed = True
        except SimulatedCrash as exc:
            result.crashes += 1
            db.crash_from(exc)
            for __ in range(MAX_RECOVERY_ATTEMPTS):
                if not db.crashed:
                    break
                try:
                    db.restart()
                except SimulatedCrash as inner:
                    result.crashes += 1
                    db.crash_from(inner)
            else:
                result.violations.append("recovery did not converge")
    finally:
        CRASH_POINTS.disarm_all()
        if point is not None:
            result.fired = point.fired - fired_before

    expected = gen0 if completed else gen1

    db.node.invalidate_caches()
    if db.ocm is not None:
        db.ocm.invalidate_all()
    txn = db.begin()
    for (obj, p), data in sorted(expected.items()):
        try:
            got: "Optional[bytes]" = db.read_page(txn, obj, p)
        except Exception:
            got = None
        if got != data:
            side = "rewound" if completed else "pre-restore"
            result.violations.append(
                f"data loss: {side} page {obj!r}/{p} unreadable or altered"
            )
    db.rollback(txn)

    # Drain: expire the snapshot, reap retention, collect the chain.
    db.txn_manager.collect_garbage()
    if db.snapshot_manager is not None:
        db.clock.advance(RETENTION_SECONDS + 1.0)
        db.snapshot_manager.reap()
    db.txn_manager.collect_garbage()

    report = StoreAuditor(db).audit()
    result.report = report
    if report.missing or report.snapshot_missing:
        result.violations.append("MISSING objects after restore episode")
    if report.leaked:
        result.violations.append(
            f"restore episode leaked {len(report.leaked)} objects"
        )
    return result


# ---------------------------------------------------------------------- #
# the failover episode (region outage -> promote -> heal)
# ---------------------------------------------------------------------- #

# Long enough that the fence + promote + restart GC all happen *inside*
# the outage; the heal phase then advances past it plus the horizon.
REGION_OUTAGE_SECONDS = 60.0
REPLICATION_HORIZON = 5.0
FAILOVER_REGIONS = ("region-a", "region-b")


def failover_overrides() -> "Dict[str, object]":
    return dict(
        replication=ReplicationConfig(
            regions=FAILOVER_REGIONS,
            mean_lag_seconds=0.2,
            staleness_horizon=REPLICATION_HORIZON,
        ),
    )


def run_failover_episode(
    crash_point_name: "Optional[str]" = None,
    seed: int = 0,
    arm_skip: int = 0,
) -> EpisodeResult:
    """Region outage on the primary, failover mid-crash, heal, audit.

    The invariants are the DR claims of DESIGN.md §12: *no committed data
    is lost within the replication horizon* (every acknowledged write
    survives the failover because promotion drains the queue first), and
    *leaks drain after failover + heal* (restart-GC tombstones replicate
    into the healed region and beat the orphans under last-writer-wins).
    """
    CRASH_POINTS.disarm_all()
    result = EpisodeResult(crash_point=crash_point_name, seed=seed,
                           mode="failover")
    mux = Multiplex(base_config(seed, failover_overrides()), MultiplexConfig(
        writers=1,
        secondary_buffer_bytes=BUFFER_FRAMES * PAYLOAD_BYTES,
        secondary_ocm_bytes=4 * 1024 * 1024,
    ))
    coordinator = mux.coordinator
    writer = mux.node("writer-1")
    store = coordinator.object_store
    expected: "Dict[Tuple[str, int], bytes]" = {}

    def commit_via(node, obj: str, gen: int) -> None:
        txn = node.begin()
        for p in range(PAGES):
            data = _payload(obj, p, gen, seed)
            node.write_page(txn, obj, p, data)
            expected[(obj, p)] = data
        node.commit(txn)

    # Baseline on the original primary; replication trails behind it.
    coordinator.create_object("t0")
    commit_via(writer, "t0", 0)

    point = None
    fired_before = 0
    try:
        if crash_point_name is not None:
            point = CRASH_POINTS.point(crash_point_name)
            fired_before = point.fired
            CRASH_POINTS.arm(crash_point_name, skip=arm_skip)

        # Orphan uploads covered only by the writer's active set; they
        # land on the primary and queue for replication like any write.
        for i in range(3):
            writer.user_dbspace.write_page(
                _payload("orphan", i, 1, seed), commit_mode=True
            )
        writer.crash()

        # The primary region goes away; the writer's orphans and the
        # baseline commits are already acknowledged, so none may be lost.
        outage_start = mux.clock.now()
        mux.inject_region_outage(
            FAILOVER_REGIONS[0],
            (outage_start, outage_start + REGION_OUTAGE_SECONDS),
        )
        mux.clock.advance(0.001)

        # Fail over to the surviving region.  The target is pinned so a
        # crash at any failover point is recovered by re-running the
        # (idempotent) failover against the same region.
        target = FAILOVER_REGIONS[1]
        for __ in range(MAX_RECOVERY_ATTEMPTS):
            try:
                mux.region_failover(to_region=target)
                break
            except SimulatedCrash as exc:
                result.crashes += 1
                coordinator.crash_from(exc)
                for __ in range(MAX_RECOVERY_ATTEMPTS):
                    if not coordinator.crashed:
                        break
                    try:
                        coordinator.restart()
                    except SimulatedCrash as inner:
                        result.crashes += 1
                        coordinator.crash_from(inner)
        else:
            result.violations.append("region failover did not converge")

        # Restart GC reclaims the orphans on the *new* primary; the blind
        # deletes replicate as tombstones into the dead region's queue.
        for __ in range(MAX_RECOVERY_ATTEMPTS):
            try:
                writer.restart()
                break
            except SimulatedCrash as exc:
                result.crashes += 1
                writer.crash_from(exc)
        else:
            result.violations.append("writer restart did not converge")

        # Life goes on against the new primary.
        commit_via(writer, "t0", 1)
    finally:
        CRASH_POINTS.disarm_all()
        if point is not None:
            result.fired = point.fired - fired_before

    # Heal: ride past the outage end plus the staleness horizon, then
    # reconcile the healed region (idempotent drain).
    schedule = store.fault_schedule
    heal_at = (schedule.horizon if schedule is not None else mux.clock.now())
    mux.clock.advance_to(max(mux.clock.now(), heal_at) + REPLICATION_HORIZON + 1.0)
    store.pump(mux.clock.now())
    coordinator.txn_manager.collect_garbage()
    if coordinator.snapshot_manager is not None:
        coordinator.clock.advance(RETENTION_SECONDS + 1.0)
        coordinator.snapshot_manager.reap()
    coordinator.txn_manager.collect_garbage()
    # GC's own deletes queue fresh tombstones; give them one more horizon
    # to propagate before requiring empty queues.
    mux.clock.advance(REPLICATION_HORIZON + 1.0)
    store.pump(mux.clock.now())
    if store.pending_count():
        result.violations.append(
            f"replication queues did not drain after heal: "
            f"{store.pending_count()} entries pending"
        )

    # Invariant 1: every acknowledged commit survives, cold, on the new
    # primary — zero committed-data loss within the replication horizon.
    txn = coordinator.begin()
    for (obj, p), data in sorted(expected.items()):
        if coordinator.read_page(txn, obj, p) != data:
            result.violations.append(
                f"data loss: committed page {obj!r}/{p} lost in failover"
            )
    coordinator.rollback(txn)

    # Invariants 2 and 3, across every region: nothing missing anywhere,
    # the healed region's orphan leaks all drained.
    report = StoreAuditor(coordinator).audit()
    result.report = report
    if report.missing or report.snapshot_missing:
        result.violations.append("MISSING objects after failover")
    if report.leaked:
        result.violations.append(
            f"failover episode leaked {len(report.leaked)} objects"
        )
    if report.region_missing:
        result.violations.append(
            f"regional data loss after heal: {len(report.region_missing)}"
        )
    if report.region_leaked or report.region_divergent:
        result.violations.append(
            "healed region did not reconcile: "
            f"{len(report.region_leaked)} leaked, "
            f"{len(report.region_divergent)} divergent"
        )
    if report.staleness_violations:
        result.violations.append(
            f"bounded staleness broken: {len(report.staleness_violations)}"
        )
    return result


# ---------------------------------------------------------------------- #
# the scrub episode (at-rest rot -> crash mid-repair -> re-scrub)
# ---------------------------------------------------------------------- #

SCRUB_DAMAGED_OBJECTS = 4


def run_scrub_episode(
    crash_point_name: "Optional[str]" = None,
    seed: int = 0,
    arm_skip: int = 0,
) -> EpisodeResult:
    """Crash the scrubber mid-repair; prove the repair is idempotent.

    A two-region replicated store converges, then a handful of stored
    primary copies are bit-flipped in place — silent at-rest rot.  The
    scrubber runs with one of its repair-bracketing crash points armed;
    whenever it fires, the engine recovers and the scrub simply runs
    again.  Because a repair overwrites the damaged version with the
    replica's clean bytes *under the same op-time*, replaying it after a
    crash on either side of the overwrite converges on the same state.
    The episode asserts that afterwards every committed page reads back
    byte-identical through cold caches and a deep audit finds zero
    CORRUPT copies in any region.
    """
    from repro.core.scrub import Scrubber

    CRASH_POINTS.disarm_all()
    result = EpisodeResult(crash_point=crash_point_name, seed=seed,
                           mode="scrub")
    overrides = failover_overrides()
    overrides["verify_reads"] = True
    db = build_engine(seed, overrides)
    expected: "Dict[Tuple[str, int], bytes]" = {}

    db.create_object("t0")
    for gen in range(2):
        txn = db.begin()
        for p in range(PAGES):
            data = _payload("t0", p, gen, seed)
            db.write_page(txn, "t0", p, data)
            expected[("t0", p)] = data
        db.commit(txn)
        db.clock.advance(0.5)

    # Let replication land every version so each region can repair the
    # other, then rot a few primary copies in place.
    store = db.object_store
    db.clock.advance(REPLICATION_HORIZON + 1.0)
    store.pump(db.clock.now())
    primary = store.store_for(FAILOVER_REGIONS[0])
    damaged = 0
    for name in sorted(primary.all_keys()):
        if damaged >= SCRUB_DAMAGED_OBJECTS:
            break
        if primary.latest_data(name) is None:
            continue
        if store.inject_damage(name, flips=2):
            damaged += 1
    if not damaged:
        result.violations.append("no stored objects available to damage")
        return result

    point = None
    fired_before = 0
    scrub_report = None
    try:
        if crash_point_name is not None:
            point = CRASH_POINTS.point(crash_point_name)
            fired_before = point.fired
            CRASH_POINTS.arm(crash_point_name, skip=arm_skip)
        for __ in range(MAX_RECOVERY_ATTEMPTS):
            try:
                scrub_report = Scrubber(db).run()
                break
            except SimulatedCrash as exc:
                result.crashes += 1
                db.crash_from(exc)
                for __ in range(MAX_RECOVERY_ATTEMPTS):
                    if not db.crashed:
                        break
                    try:
                        db.restart()
                    except SimulatedCrash as inner:
                        result.crashes += 1
                        db.crash_from(inner)
                else:
                    result.violations.append("recovery did not converge")
        else:
            result.violations.append("scrub did not converge")
    finally:
        CRASH_POINTS.disarm_all()
        if point is not None:
            result.fired = point.fired - fired_before

    if scrub_report is not None and scrub_report.quarantined:
        result.violations.append(
            f"scrub quarantined {len(scrub_report.quarantined)} copies a "
            "healthy replica should have repaired"
        )

    # Invariant 1: committed pages survive cold — through *verified*
    # reads, so a missed repair surfaces as a failure here too.
    db.node.invalidate_caches()
    if db.ocm is not None:
        db.ocm.invalidate_all()
    txn = db.begin()
    for (obj, p), data in sorted(expected.items()):
        try:
            got: "Optional[bytes]" = db.read_page(txn, obj, p)
        except SimulatedCrash:
            raise
        except Exception:
            got = None
        if got != data:
            result.violations.append(
                f"data loss: committed page {obj!r}/{p} unreadable or "
                "altered after the scrub"
            )
    db.rollback(txn)

    # Invariant 2: a deep audit finds zero CORRUPT copies anywhere.
    report = StoreAuditor(db).audit(deep=True)
    result.report = report
    if report.corrupt or report.region_corrupt:
        result.violations.append(
            f"at-rest damage survived the scrub: {len(report.corrupt)} "
            f"primary, {len(report.region_corrupt)} regional"
        )
    if report.missing or report.snapshot_missing:
        result.violations.append("MISSING objects after the scrub episode")
    if report.region_divergent:
        result.violations.append(
            f"regions diverged after repair: {len(report.region_divergent)}"
        )
    return result


# ---------------------------------------------------------------------- #
# exploration drivers
# ---------------------------------------------------------------------- #

def run_episode(
    crash_point_name: "Optional[str]",
    seed: int = 0,
    broken_gc: bool = False,
    arm_skip: int = 0,
) -> EpisodeResult:
    """Route a crash point to the episode that can actually traverse it."""
    if crash_point_name is not None:
        if crash_point_name.startswith(("multiplex.failover.",
                                        "replication.")):
            return run_failover_episode(crash_point_name, seed=seed,
                                        arm_skip=arm_skip)
        if crash_point_name.startswith(("autoscale.",
                                        "multiplex.retire.")):
            return run_scale_episode(crash_point_name, seed=seed,
                                     arm_skip=arm_skip)
        if crash_point_name.startswith("multiplex."):
            return run_multiplex_episode(crash_point_name, seed=seed,
                                         arm_skip=arm_skip)
        if crash_point_name.startswith("engine.restore."):
            return run_restore_episode(crash_point_name, seed=seed,
                                       arm_skip=arm_skip)
        if crash_point_name.startswith("scrub."):
            return run_scrub_episode(crash_point_name, seed=seed,
                                     arm_skip=arm_skip)
        if crash_point_name.startswith(WRITE_PIPELINE_PREFIXES):
            return run_churn_episode(
                crash_point_name, seed=seed, broken_gc=broken_gc,
                arm_skip=arm_skip,
                config_overrides=dict(WRITE_PIPELINE_OVERRIDES),
            )
    return run_churn_episode(crash_point_name, seed=seed,
                             broken_gc=broken_gc, arm_skip=arm_skip)


def explore_all_points(seed: int = 0,
                       broken_gc: bool = False) -> "List[EpisodeResult]":
    """One episode per registered crash point, in sorted name order."""
    return [
        run_episode(name, seed=seed, broken_gc=broken_gc)
        for name in registered_points()
    ]


def explore_random(count: int = 10, seed: int = 0) -> "List[EpisodeResult]":
    """Seeded random schedules: random point, random arming delay."""
    points = registered_points()
    rng = DeterministicRng(seed, "crash-explorer")
    results = []
    for i in range(count):
        sub = rng.substream(f"episode/{i}")
        name = sub.choice(points)
        skip = sub.randint(0, 2)
        results.append(run_episode(name, seed=seed + i, arm_skip=skip))
    return results
