"""Object store substrate: API, in-memory store, S3 simulator, retries.

The paper stores database pages directly as objects on AWS S3 / Azure Blob.
We substitute a deterministic simulator that reproduces the properties the
paper's design reacts to:

- *eventual consistency*: a freshly written object may be invisible for a
  while ("NoSuchKey"), and an overwritten object may serve stale versions —
  the two failure scenarios of Section 3;
- *per-prefix request throttling*: request rate per key prefix is limited,
  motivating the hashed-prefix scheme of Section 3.1;
- *latency/throughput trade-off*: high per-request first-byte latency but
  near-unlimited aggregate bandwidth (bounded only by the instance NIC);
- *request pricing*: PUT/GET charges feeding Table 3.
"""

from repro.objectstore.errors import (
    CircuitOpenError,
    NoSuchKeyError,
    ObjectStoreError,
    OverwriteForbiddenError,
    RetriesExhaustedError,
)
from repro.objectstore.base import ObjectStore
from repro.objectstore.memory import InMemoryObjectStore
from repro.objectstore.consistency import ConsistencyModel, STRONG, EVENTUAL
from repro.objectstore.faults import (
    ErrorStorm,
    FaultEvent,
    FaultSchedule,
    LatencySpike,
    NAMED_SCHEDULES,
    OutageWindow,
    RegionOutage,
    ThrottleStorm,
    canonical_storm,
    named_schedule,
)
from repro.objectstore.s3sim import ObjectStoreProfile, SimulatedObjectStore, S3_PROFILE
from repro.objectstore.replicated import (
    ReplicatedObjectStore,
    ReplicationConfig,
    ReplicationEntry,
    StalenessViolation,
    build_replicated_store,
)
from repro.objectstore.client import (
    CircuitBreaker,
    CircuitBreakerConfig,
    HedgePolicy,
    RetryingObjectClient,
    RetryPolicy,
)

__all__ = [
    "ObjectStore",
    "InMemoryObjectStore",
    "SimulatedObjectStore",
    "ObjectStoreProfile",
    "S3_PROFILE",
    "ConsistencyModel",
    "STRONG",
    "EVENTUAL",
    "RetryingObjectClient",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "HedgePolicy",
    "FaultEvent",
    "FaultSchedule",
    "OutageWindow",
    "RegionOutage",
    "ReplicatedObjectStore",
    "ReplicationConfig",
    "ReplicationEntry",
    "StalenessViolation",
    "build_replicated_store",
    "ErrorStorm",
    "LatencySpike",
    "ThrottleStorm",
    "NAMED_SCHEDULES",
    "canonical_storm",
    "named_schedule",
    "ObjectStoreError",
    "NoSuchKeyError",
    "OverwriteForbiddenError",
    "RetriesExhaustedError",
    "CircuitOpenError",
]
