"""Abstract object store interface.

Keys are opaque strings (the engine uses ``<hashed-prefix>/<64-bit-key>``),
values are immutable byte strings.  Implementations may be strongly or
eventually consistent; callers that need read-after-write semantics must
pair writes with unique keys and retry reads (see
:class:`~repro.objectstore.client.RetryingObjectClient`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator


class ObjectStore(ABC):
    """Minimal bucket-like interface: put/get/delete/exists/list."""

    @abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (overwrite allowed by the API)."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Return the object's data; raise ``NoSuchKeyError`` if invisible."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Delete the object.  Deleting a missing key is not an error
        (mirrors S3 semantics and simplifies GC polling)."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether a *visible* object exists under ``key``."""

    @abstractmethod
    def list_keys(self, prefix: str = "") -> "Iterator[str]":
        """Iterate visible keys starting with ``prefix``, in sorted order."""

    @abstractmethod
    def stored_bytes(self) -> int:
        """Total bytes at rest (visible objects), for storage billing."""

    def object_count(self) -> int:
        """Number of visible objects (default: count ``list_keys``)."""
        return sum(1 for __ in self.list_keys())
