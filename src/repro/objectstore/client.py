"""Retrying client over a simulated object store, with windowed parallel I/O.

This is the storage subsystem's view of the bucket:

- **reads retry on "no such key"** up to a configurable number of attempts
  with exponential backoff, converting eventual consistency into
  read-after-write consistency for never-overwritten keys (Section 3);
- **writes retry on transient failures**; after the retry budget is
  exhausted the error propagates and the transaction layer rolls back;
- **deadline budgets**: on top of the attempt count, a per-operation
  virtual-time budget bounds how long an operation may keep retrying —
  the resulting :class:`RetriesExhaustedError` records the deadline;
- **decorrelated-jitter backoff** (optional): retries desynchronise, so a
  storm of failed requests does not reconverge into synchronized retry
  waves against a throttled prefix;
- **hedged GETs** (optional): when a read's completion would land past the
  client's observed p99 GET latency, a second request is fired after that
  delay and the first completion wins — the classic tail-latency hedge;
- **verified reads** (optional): every served payload's CRC-32C is checked
  against the store's recorded checksum; mismatches retry as their own
  category, trigger read-repair under a replicated store, and surface as
  :class:`CorruptObjectError` only when no clean copy exists anywhere —
  corrupt bytes never reach the engine;
- **circuit breaker** (optional): after N consecutive transient failures
  the breaker opens and requests fail fast with
  :class:`CircuitOpenError`; after a cool-down, a half-open probe decides
  whether to close it.  Commit-critical writes can *bypass* the breaker so
  write-through-at-commit semantics survive an outage;
- **never-write-twice enforcement** (optional): the client remembers every
  key it has *successfully* written and refuses to write one twice — a
  guard for the engine's invariant and the knob for the update-in-place
  ablation;
- **windowed parallel I/O**: ``get_many``/``put_many`` keep up to ``window``
  requests outstanding, modelling the aggressive parallel prefetching the
  paper relies on to mask S3 latency;
- **GET coalescing** (optional): bulk loads consume monotonically
  sequential 64-bit keys, so a scan's ``get_many`` is dominated by runs
  of adjacent keys.  With ``coalesce_gets`` the client groups each run
  (up to ``coalesce_max_run`` keys) into one ranged multi-get that
  charges a single request against the store's per-prefix token buckets
  — the connector-level request reduction Stocator popularised, cutting
  both the bill and throttle stalls.  A transient failure retries the
  whole range; keys the range could not serve (not yet visible under
  eventual consistency) fall back to single GETs with the usual
  "no such key" retry schedule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checksum import crc32c
from repro.objectstore.errors import (
    CircuitOpenError,
    CorruptObjectError,
    NoSuchKeyError,
    OverwriteForbiddenError,
    RetriesExhaustedError,
)
from repro.objectstore.s3sim import SimulatedObjectStore, TransientRequestError
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.sim.metrics import MetricsRegistry
from repro.sim.pipes import Pipe
from repro.sim.rng import DeterministicRng
from repro.sim.tracing import NULL_TRACER

CP_PUT_BEFORE_REQUEST = register_crash_point(
    "client.put.before_request",
    "a PUT reached the client but no request ever left the node",
)
CP_DELETE_BEFORE_REQUEST = register_crash_point(
    "client.delete.before_request",
    "a DELETE reached the client but no request ever left the node",
)
CP_PUT_RANGE_BEFORE_REQUEST = register_crash_point(
    "client.put_range.before_request",
    "a coalesced PUT batch reached the client but no request ever left "
    "the node (every key in the run is an unflushed orphan candidate)",
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule (virtual seconds).

    ``jitter="decorrelated"`` replaces the deterministic exponential
    schedule with AWS-style decorrelated jitter: each delay is drawn
    uniformly from ``[initial_backoff, 3 * previous_delay]`` (capped at
    ``max_backoff``), using the client's deterministic RNG substream.
    ``deadline`` bounds the total virtual time an operation may spend
    retrying, independent of the attempt count (None = unbounded).
    """

    max_attempts: int = 8
    initial_backoff: float = 0.010
    backoff_multiplier: float = 2.0
    max_backoff: float = 1.0
    jitter: str = "none"  # "none" | "decorrelated"
    deadline: "Optional[float]" = None

    def __post_init__(self) -> None:
        if self.jitter not in ("none", "decorrelated"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("retry deadline must be positive (or None)")

    def backoff(self, attempt: int,
                rng: "Optional[DeterministicRng]" = None,
                previous: "Optional[float]" = None) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``rng`` and ``previous`` (the previously returned delay) drive the
        decorrelated-jitter mode; without them the schedule degrades to
        plain capped exponential backoff.
        """
        if self.jitter == "decorrelated" and rng is not None:
            prev = previous if previous is not None else self.initial_backoff
            high = max(self.initial_backoff, 3.0 * prev)
            return min(self.max_backoff,
                       rng.uniform(self.initial_backoff, high))
        delay = self.initial_backoff * (self.backoff_multiplier ** (attempt - 1))
        return min(delay, self.max_backoff)


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Circuit breaker thresholds (virtual seconds)."""

    failure_threshold: int = 5
    reset_timeout: float = 5.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset timeout must be positive")
        if self.half_open_successes < 1:
            raise ValueError("half-open success count must be at least 1")


@dataclass(frozen=True)
class HedgePolicy:
    """Hedged-GET policy: fire a second read after a p-quantile delay."""

    quantile: float = 99.0
    min_samples: int = 20
    initial_delay: float = 0.050

    def __post_init__(self) -> None:
        if not 0 < self.quantile <= 100:
            raise ValueError("hedge quantile must be in (0, 100]")
        if self.min_samples < 1:
            raise ValueError("hedge min_samples must be at least 1")
        if self.initial_delay <= 0:
            raise ValueError("hedge initial delay must be positive")


_STATE_CODES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class CircuitBreaker:
    """Consecutive-failure circuit breaker on the virtual clock.

    The breaker is driven entirely by the virtual times the client passes
    in, so a chaos run replays bit-identically.  State transitions are
    recorded as counters (``breaker_opened``/``breaker_closed``/
    ``breaker_half_open``), a gauge (``breaker_state``: 0 closed, 1
    half-open, 2 open) and a time series of ``(time, state_code)``
    transition samples for boundary assertions.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, config: CircuitBreakerConfig,
                 metrics: MetricsRegistry, suffix: str = "") -> None:
        self.config = config
        self.metrics = metrics
        # Region label: breakers scoped to one backing region record
        # under ``breaker_*:{region}`` so a dead region's breaker history
        # never conflates with a healthy failover target's.
        self.suffix = suffix
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_successes = 0
        self.metrics.gauge(f"breaker_state{suffix}").set(0.0)

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def state_at(self, now: float) -> str:
        """Effective state at ``now`` (an open breaker lapses to half-open)."""
        if (
            self._state == self.OPEN
            and now >= self._opened_at + self.config.reset_timeout
        ):
            return self.HALF_OPEN
        return self._state

    def retry_at(self) -> float:
        """Virtual time at which an open breaker admits a probe."""
        return self._opened_at + self.config.reset_timeout

    def admit(self, key: str, now: float) -> None:
        """Fail fast with :class:`CircuitOpenError` while open."""
        state = self.state_at(now)
        if state == self.OPEN:
            self.metrics.counter(
                f"breaker_fast_failures{self.suffix}"
            ).increment()
            raise CircuitOpenError(key, self.retry_at())
        if state == self.HALF_OPEN and self._state == self.OPEN:
            # The cool-down elapsed; this request is the half-open probe.
            self._transition(self.HALF_OPEN, now)

    def record_success(self, now: float) -> None:
        if self._state == self.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.config.half_open_successes:
                self._transition(self.CLOSED, now)
        elif self._state == self.OPEN:
            # A breaker-bypassing operation (commit write-through) succeeded
            # while open: the store is demonstrably healthy again.
            self._transition(self.CLOSED, now)
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self._consecutive_failures += 1
        if self._state == self.HALF_OPEN:
            self._transition(self.OPEN, now)
        elif self._state == self.OPEN:
            # Failures observed by bypassing operations re-arm the timer.
            self._opened_at = now
        elif self._consecutive_failures >= self.config.failure_threshold:
            self._transition(self.OPEN, now)

    def _transition(self, state: str, now: float) -> None:
        self._state = state
        if state == self.OPEN:
            self._opened_at = now
            self.metrics.counter(f"breaker_opened{self.suffix}").increment()
        elif state == self.HALF_OPEN:
            self._half_open_successes = 0
            self.metrics.counter(f"breaker_half_open{self.suffix}").increment()
        else:
            self._consecutive_failures = 0
            self.metrics.counter(f"breaker_closed{self.suffix}").increment()
        self.metrics.gauge(f"breaker_state{self.suffix}").set(
            _STATE_CODES[state]
        )
        self.metrics.series(f"breaker_transitions{self.suffix}").record(
            now, _STATE_CODES[state]
        )


class RetryingObjectClient:
    """Engine-facing object store client (timed API, virtual clock)."""

    def __init__(
        self,
        store: SimulatedObjectStore,
        policy: RetryPolicy = RetryPolicy(),
        enforce_unique_keys: bool = True,
        parallel_window: int = 32,
        bandwidth: "Optional[Pipe]" = None,
        node_id: "Optional[str]" = None,
        breaker: "Optional[CircuitBreakerConfig]" = None,
        hedge: "Optional[HedgePolicy]" = None,
        rng: "Optional[DeterministicRng]" = None,
        coalesce_gets: bool = False,
        coalesce_max_run: int = 16,
        coalesce_puts: bool = False,
        put_range_attempts: int = 2,
        verify_reads: bool = False,
    ) -> None:
        if policy.max_attempts < 1:
            raise ValueError("retry policy must allow at least one attempt")
        if parallel_window < 1:
            raise ValueError("parallel window must be at least 1")
        if coalesce_max_run < 2:
            raise ValueError("coalesce_max_run must be at least 2")
        if put_range_attempts < 1:
            raise ValueError("put_range_attempts must be at least 1")
        self.store = store
        self.policy = policy
        self.enforce_unique_keys = enforce_unique_keys
        self.parallel_window = parallel_window
        # The node's own NIC pipe; transfers route through it so several
        # multiplex nodes sharing one bucket each get their own bandwidth.
        self.bandwidth = bandwidth
        self.node_id = node_id
        self.coalesce_gets = coalesce_gets
        self.coalesce_max_run = coalesce_max_run
        self.coalesce_puts = coalesce_puts
        self.put_range_attempts = put_range_attempts
        # Verified reads: recompute CRC-32C over every served payload and
        # compare against the store's recorded checksum.  A mismatch never
        # reaches the caller — it retries as its own category (and under a
        # replicated store triggers read-repair first).
        self.verify_reads = verify_reads
        self.metrics = MetricsRegistry()
        self.tracer = NULL_TRACER
        self.hedge = hedge
        # Breaker and hedged-GET latency state are scoped per backing
        # region: a replicated store changes its ``primary_region`` on
        # failover, and a breaker opened by a dead region must not fail
        # fast against the healthy region it failed over to (nor should
        # the dead region's latency tail drive the new region's hedges).
        # Single-region stores map to the ``None`` region with the exact
        # legacy metric names.
        self._breaker_config = breaker
        self._breakers: "Dict[Optional[str], CircuitBreaker]" = {}
        if breaker is not None:
            self.breaker  # eagerly create the current region's breaker
        self._rng = rng or DeterministicRng(
            0, f"object-client/{node_id or 'default'}"
        )
        self._backoff_rng = self._rng.substream("backoff")
        self._written_keys: "set[str]" = set()

    @property
    def clock(self):
        return self.store.clock

    def _region(self) -> "Optional[str]":
        """The backing region requests currently land in."""
        region = getattr(self.store, "primary_region", None)
        if region is not None:
            return region
        return getattr(self.store, "region", None)

    def _suffix(self) -> str:
        region = self._region()
        return "" if region is None else f":{region}"

    def _bump(self, name: str, amount: int = 1) -> None:
        """Increment a counter, plus its region-labelled twin if any."""
        self.metrics.counter(name).increment(amount)
        region = self._region()
        if region is not None:
            self.metrics.counter(f"{name}:{region}").increment(amount)

    @property
    def breaker(self) -> "Optional[CircuitBreaker]":
        """The circuit breaker for the *current* backing region."""
        if self._breaker_config is None:
            return None
        region = self._region()
        breaker = self._breakers.get(region)
        if breaker is None:
            breaker = CircuitBreaker(
                self._breaker_config, self.metrics,
                suffix="" if region is None else f":{region}",
            )
            self._breakers[region] = breaker
        return breaker

    def breaker_state(self, now: "Optional[float]" = None) -> str:
        """Effective breaker state ("closed" when no breaker configured)."""
        if self.breaker is None:
            return CircuitBreaker.CLOSED
        return self.breaker.state_at(self.clock.now() if now is None else now)

    # ------------------------------------------------------------------ #
    # retry plumbing
    # ------------------------------------------------------------------ #

    def _next_backoff(self, attempt: int,
                      previous: "Optional[float]") -> float:
        return self.policy.backoff(attempt, rng=self._backoff_rng,
                                   previous=previous)

    def _check_deadline(self, key: str, op_start: float, next_start: float,
                        attempts: int) -> None:
        deadline = self.policy.deadline
        if deadline is not None and next_start - op_start > deadline:
            self.metrics.counter("deadline_expirations").increment()
            raise RetriesExhaustedError(key, attempts, deadline=deadline)

    def _admit(self, key: str, now: float, bypass: bool) -> None:
        if self.breaker is not None and not bypass:
            self.breaker.admit(key, now)

    def _note_failure(self, when: float) -> None:
        if self.breaker is not None:
            self.breaker.record_failure(when)

    def _note_success(self, when: float) -> None:
        if self.breaker is not None:
            self.breaker.record_success(when)

    # ------------------------------------------------------------------ #
    # timed single-object operations (never advance the clock)
    # ------------------------------------------------------------------ #

    def put_at(self, key: str, data: bytes, now: float,
               bypass_breaker: bool = False) -> float:
        """Upload with retry on transient failures; return completion time.

        The never-write-twice ledger records ``key`` only after the store
        accepted the write: a put that exhausted its retries leaves the
        key unwritten, so a later legitimate re-put may succeed.
        """
        if self.enforce_unique_keys and key in self._written_keys:
            raise OverwriteForbiddenError(key)
        crash_point(CP_PUT_BEFORE_REQUEST)
        span = self.tracer.begin("put", "client", start=now,
                                 key=key, nbytes=len(data))
        when = now
        previous: "Optional[float]" = None
        try:
            for attempt in range(1, self.policy.max_attempts + 1):
                self._admit(key, when, bypass_breaker)
                try:
                    done = self.store.put_at(key, data, when,
                                             bandwidth=self.bandwidth,
                                             node=self.node_id)
                except TransientRequestError as error:
                    failed_at = error.failed_at  # type: ignore[attr-defined]
                    self._note_failure(failed_at)
                    self._bump("put_retries")
                    previous = self._next_backoff(attempt, previous)
                    when = failed_at + previous
                    self.tracer.record("backoff", "retry", failed_at, when,
                                       key=key, attempt=attempt)
                    self._check_deadline(key, now, when, attempt)
                    continue
                self._note_success(done)
                if self.enforce_unique_keys:
                    self._written_keys.add(key)
                self.tracer.finish(span, end=done, attempts=attempt)
                span = None
                return done
            raise RetriesExhaustedError(key, self.policy.max_attempts)
        finally:
            if span is not None:
                self.tracer.finish(span, end=when, error="failed")

    def _latency_histogram(self):
        """Observed GET latencies for the current backing region.

        Hedge delays derive from this histogram, so each region's tail is
        tracked separately — after failover, the new primary's hedges are
        driven by its own latency history, not the dead region's.
        """
        return self.metrics.histogram(f"get_latency{self._suffix()}")

    def _hedge_delay(self) -> float:
        assert self.hedge is not None
        latencies = self._latency_histogram()
        if latencies.count >= self.hedge.min_samples:
            return max(latencies.percentile(self.hedge.quantile), 1e-9)
        return self.hedge.initial_delay

    def _store_get(
        self, key: str, when: float
    ) -> "Tuple[Optional[bytes], Optional[int], float]":
        """One raw store GET, with the expected checksum when verifying."""
        if self.verify_reads and hasattr(self.store, "try_get_verified_at"):
            return self.store.try_get_verified_at(
                key, when, bandwidth=self.bandwidth, node=self.node_id
            )
        data, done = self.store.try_get_at(key, when,
                                           bandwidth=self.bandwidth,
                                           node=self.node_id)
        return data, None, done

    def _mismatched(self, data: "Optional[bytes]",
                    expected: "Optional[int]") -> bool:
        return (
            self.verify_reads and data is not None
            and expected is not None and crc32c(data) != expected
        )

    def _try_get_once(
        self, key: str, when: float
    ) -> "Tuple[Optional[bytes], Optional[int], float]":
        """One (possibly hedged) GET attempt against the store."""
        latencies = self._latency_histogram()
        if self.hedge is None:
            data, expected, done = self._store_get(key, when)
            latencies.observe(done - when)
            return data, expected, done
        delay = self._hedge_delay()
        primary_error: "Optional[TransientRequestError]" = None
        data: "Optional[bytes]" = None
        expected: "Optional[int]" = None
        try:
            data, expected, done = self._store_get(key, when)
        except TransientRequestError as error:
            primary_error = error
            done = error.failed_at  # type: ignore[attr-defined]
        if done - when <= delay:
            if primary_error is not None:
                raise primary_error
            latencies.observe(done - when)
            return data, expected, done
        # The primary response would land past the hedge delay: fire the
        # hedge and take whichever completion comes first.
        self._bump("hedged_gets")
        try:
            hedge_data, hedge_expected, hedge_done = self._store_get(
                key, when + delay
            )
        except TransientRequestError:
            if primary_error is not None:
                raise primary_error
            latencies.observe(done - when)
            return data, expected, done
        if primary_error is not None or hedge_done < done:
            # The hedge won the race — but never hand up a corrupt winner
            # when the slower primary completion is clean.
            if (
                primary_error is None
                and self._mismatched(hedge_data, hedge_expected)
                and not self._mismatched(data, expected)
            ):
                self._bump("hedge_mismatch")
                latencies.observe(done - when)
                return data, expected, done
            self._bump("hedge_wins")
            latencies.observe(hedge_done - when)
            return hedge_data, hedge_expected, hedge_done
        # The primary won the race: same guard, mirrored.
        if (
            self._mismatched(data, expected)
            and not self._mismatched(hedge_data, hedge_expected)
        ):
            self._bump("hedge_mismatch")
            latencies.observe(hedge_done - when)
            return hedge_data, hedge_expected, hedge_done
        latencies.observe(done - when)
        return data, expected, done

    def _attempt_read_repair(self, key: str, when: float) -> int:
        """Ask a replicated store to heal ``key`` from a healthy region."""
        repair = getattr(self.store, "read_repair", None)
        if repair is None:
            return 0
        span = self.tracer.begin("read_repair", "client", start=when,
                                 key=key)
        repaired = repair(key, when)
        if repaired:
            self._bump("read_repairs", repaired)
        self.tracer.finish(span, end=when, repaired=repaired)
        return repaired

    def get_at(self, key: str, now: float) -> "Tuple[bytes, float]":
        """Read with retry on "no such key" and transient failures.

        With ``verify_reads`` on, a served payload whose CRC-32C does not
        match the store's recorded checksum is treated as a third retry
        category (``checksum_mismatches``, distinct from transient-failure
        and not-found retries): the client read-repairs the damaged copy
        from a healthy replica when the store supports it, then retries.
        Corrupt bytes are *never* returned; exhausting the budget on
        mismatches raises :class:`CorruptObjectError`.
        """
        span = self.tracer.begin("get", "client", start=now, key=key)
        when = now
        previous: "Optional[float]" = None
        last_mismatch: "Optional[Tuple[Optional[int], int]]" = None
        try:
            for attempt in range(1, self.policy.max_attempts + 1):
                self._admit(key, when, bypass=False)
                try:
                    data, expected, done = self._try_get_once(key, when)
                except TransientRequestError as error:
                    failed_at = error.failed_at  # type: ignore[attr-defined]
                    self._note_failure(failed_at)
                    self._bump("get_retries")
                    previous = self._next_backoff(attempt, previous)
                    when = failed_at + previous
                    self.tracer.record("backoff", "retry", failed_at, when,
                                       key=key, attempt=attempt)
                    self._check_deadline(key, now, when, attempt)
                    continue
                self._note_success(done)
                if data is not None:
                    if self._mismatched(data, expected):
                        actual = crc32c(data)
                        last_mismatch = (expected, actual)
                        self._bump("checksum_mismatches")
                        self.tracer.record(
                            "verify", "checksum_mismatch", when, done,
                            key=key, attempt=attempt,
                            expected=expected, actual=actual,
                        )
                        self._attempt_read_repair(key, done)
                        previous = self._next_backoff(attempt, previous)
                        when = done + previous
                        self._check_deadline(key, now, when, attempt)
                        continue
                    self.tracer.finish(span, end=done, attempts=attempt,
                                       nbytes=len(data))
                    span = None
                    return data, done
                self._bump("not_found_retries")
                previous = self._next_backoff(attempt, previous)
                when = done + previous
                self.tracer.record("backoff", "retry", done, when,
                                   key=key, attempt=attempt,
                                   reason="not_found")
                self._check_deadline(key, now, when, attempt)
            if last_mismatch is not None:
                raise CorruptObjectError(key, last_mismatch[0],
                                         last_mismatch[1],
                                         self.policy.max_attempts)
            raise RetriesExhaustedError(key, self.policy.max_attempts)
        finally:
            if span is not None:
                self.tracer.finish(span, end=when, error="failed")

    def delete_at(self, key: str, now: float) -> float:
        """Delete with retry on transient failures (GC batches)."""
        crash_point(CP_DELETE_BEFORE_REQUEST)
        span = self.tracer.begin("delete", "client", start=now, key=key)
        when = now
        previous: "Optional[float]" = None
        try:
            for attempt in range(1, self.policy.max_attempts + 1):
                self._admit(key, when, bypass=False)
                try:
                    done = self.store.delete_at(key, when, node=self.node_id)
                except TransientRequestError as error:
                    failed_at = error.failed_at  # type: ignore[attr-defined]
                    self._note_failure(failed_at)
                    self._bump("delete_retries")
                    previous = self._next_backoff(attempt, previous)
                    when = failed_at + previous
                    self.tracer.record("backoff", "retry", failed_at, when,
                                       key=key, attempt=attempt)
                    self._check_deadline(key, now, when, attempt)
                    continue
                self._note_success(done)
                self.tracer.finish(span, end=done, attempts=attempt)
                span = None
                return done
            raise RetriesExhaustedError(key, self.policy.max_attempts)
        finally:
            if span is not None:
                self.tracer.finish(span, end=when, error="failed")

    def exists_at(self, key: str, now: float) -> "Tuple[bool, float]":
        """Visibility probe with retry on transient failures (restart GC)."""
        span = self.tracer.begin("head", "client", start=now, key=key)
        when = now
        previous: "Optional[float]" = None
        try:
            for attempt in range(1, self.policy.max_attempts + 1):
                self._admit(key, when, bypass=False)
                try:
                    visible, done = self.store.exists_at(key, when,
                                                         node=self.node_id)
                except TransientRequestError as error:
                    failed_at = error.failed_at  # type: ignore[attr-defined]
                    self._note_failure(failed_at)
                    self._bump("head_retries")
                    previous = self._next_backoff(attempt, previous)
                    when = failed_at + previous
                    self.tracer.record("backoff", "retry", failed_at, when,
                                       key=key, attempt=attempt)
                    self._check_deadline(key, now, when, attempt)
                    continue
                self._note_success(done)
                self.tracer.finish(span, end=done, attempts=attempt)
                span = None
                return visible, done
            raise RetriesExhaustedError(key, self.policy.max_attempts)
        finally:
            if span is not None:
                self.tracer.finish(span, end=when, error="failed")

    # ------------------------------------------------------------------ #
    # synchronous wrappers (advance the clock)
    # ------------------------------------------------------------------ #

    def put(self, key: str, data: bytes) -> None:
        self.clock.advance_to(self.put_at(key, data, self.clock.now()))

    def get(self, key: str) -> bytes:
        data, done = self.get_at(key, self.clock.now())
        self.clock.advance_to(done)
        return data

    def delete(self, key: str) -> None:
        self.clock.advance_to(self.delete_at(key, self.clock.now()))

    def exists(self, key: str) -> bool:
        visible, done = self.exists_at(key, self.clock.now())
        self.clock.advance_to(done)
        return visible

    # ------------------------------------------------------------------ #
    # windowed parallel batches (advance the clock to the last completion)
    # ------------------------------------------------------------------ #

    def _run_window_at(
        self,
        jobs: "Sequence[Tuple[str, Optional[bytes]]]",
        window: "Optional[int]",
        now: float,
        bypass_breaker: bool = False,
    ) -> "Tuple[Dict[str, bytes], float]":
        """Timed core of the windowed batch APIs: run get (data=None) /
        put jobs with bounded outstanding requests starting at ``now``;
        return ``(results, last_completion)`` without touching the clock."""
        width = window or self.parallel_window
        inflight: "List[float]" = []  # min-heap of completion times
        results: "Dict[str, bytes]" = {}
        last_completion = now
        for key, payload in jobs:
            start = now
            if len(inflight) >= width:
                start = max(now, heapq.heappop(inflight))
            if payload is None:
                data, done = self.get_at(key, start)
                results[key] = data
            else:
                done = self.put_at(key, payload, start,
                                   bypass_breaker=bypass_breaker)
            heapq.heappush(inflight, done)
            last_completion = max(last_completion, done)
        return results, last_completion

    def _run_window(
        self,
        jobs: "Sequence[Tuple[str, Optional[bytes]]]",
        window: "Optional[int]",
        bypass_breaker: bool = False,
    ) -> "Dict[str, bytes]":
        """Run get (data=None) / put jobs with bounded outstanding requests."""
        results, last_completion = self._run_window_at(
            jobs, window, self.clock.now(), bypass_breaker=bypass_breaker
        )
        self.clock.advance_to(last_completion)
        return results

    # ------------------------------------------------------------------ #
    # GET coalescing (adjacent-key runs become ranged multi-gets)
    # ------------------------------------------------------------------ #

    def _coalesce_runs(self, keys: "Sequence[str]") -> "List[List[str]]":
        """Group object names into runs of adjacent 64-bit keys.

        Names that do not parse as hashed page-object names (catalog
        blobs, test fixtures) are returned as single-name runs.  Runs are
        capped at ``coalesce_max_run`` so one lost range never stalls an
        unbounded number of pages behind a retry.
        """
        from repro.storage.keys import object_key_from_name

        parsed: "List[Tuple[int, str]]" = []
        singles: "List[List[str]]" = []
        for name in keys:
            try:
                parsed.append((object_key_from_name(name), name))
            except ValueError:
                singles.append([name])
        parsed.sort()
        runs: "List[List[str]]" = []
        current: "List[str]" = []
        previous_key: "Optional[int]" = None
        for numeric, name in parsed:
            if (current and previous_key is not None
                    and numeric == previous_key + 1
                    and len(current) < self.coalesce_max_run):
                current.append(name)
            else:
                if current:
                    runs.append(current)
                current = [name]
            previous_key = numeric
        if current:
            runs.append(current)
        return runs + singles

    def _get_range(self, names: "Sequence[str]",
                   now: float) -> "Tuple[Dict[str, Optional[bytes]], float]":
        """One ranged multi-get with retry on transient failures.

        The range is a single store request: a transient failure fails
        (and retries) the whole range.  Per-key "not yet visible" results
        come back as ``None`` — the caller falls back to single GETs for
        those, which carry the usual not-found retry schedule.  With
        ``verify_reads`` on, keys whose payload fails its checksum are
        demoted to ``None`` the same way (after a read-repair attempt):
        the single-GET fallback carries the full verified-retry schedule.
        """
        anchor = names[0]
        span = self.tracer.begin("get_range", "client", start=now,
                                 key=anchor, count=len(names))
        when = now
        previous: "Optional[float]" = None
        verified = (self.verify_reads
                    and hasattr(self.store, "get_range_verified_at"))
        try:
            for attempt in range(1, self.policy.max_attempts + 1):
                self._admit(anchor, when, bypass=False)
                try:
                    if verified:
                        results, expectations, done = (
                            self.store.get_range_verified_at(
                                names, when, bandwidth=self.bandwidth,
                                node=self.node_id,
                            )
                        )
                        for name in names:
                            data = results.get(name)
                            if self._mismatched(data,
                                                expectations.get(name)):
                                self._bump("checksum_mismatches")
                                self.tracer.record(
                                    "verify", "checksum_mismatch",
                                    when, done, key=name, attempt=attempt,
                                )
                                self._attempt_read_repair(name, done)
                                results[name] = None
                    else:
                        results, done = self.store.get_range_at(
                            names, when, bandwidth=self.bandwidth,
                            node=self.node_id,
                        )
                except TransientRequestError as error:
                    failed_at = error.failed_at  # type: ignore[attr-defined]
                    self._note_failure(failed_at)
                    self._bump("get_retries")
                    previous = self._next_backoff(attempt, previous)
                    when = failed_at + previous
                    self.tracer.record("backoff", "retry", failed_at, when,
                                       key=anchor, attempt=attempt)
                    self._check_deadline(anchor, now, when, attempt)
                    continue
                self._note_success(done)
                self.metrics.counter("coalesced_get_batches").increment()
                self.metrics.counter("coalesced_get_keys").increment(
                    len(names)
                )
                self.tracer.finish(span, end=done, attempts=attempt)
                span = None
                return results, done
            raise RetriesExhaustedError(anchor, self.policy.max_attempts)
        finally:
            if span is not None:
                self.tracer.finish(span, end=when, error="failed")

    # ------------------------------------------------------------------ #
    # PUT coalescing (adjacent fresh-key runs become ranged multi-puts)
    # ------------------------------------------------------------------ #

    def put_batch_at(self, items: "Sequence[Tuple[str, bytes]]", now: float,
                     bypass_breaker: bool = False) -> float:
        """One coalesced multi-key PUT; return the batch completion time.

        The batch is a single store request billed as one PUT.  Transient
        failures retry the *whole* range up to ``put_range_attempts``
        times; after that the batch degrades to per-key single PUTs, each
        carrying the full retry schedule — a lost range never strands its
        pages behind an unbounded range-retry loop.  Never-write-twice is
        preserved on both paths: every key in the run is fresh (checked
        against the ledger up front), a failed range landed nothing, and
        keys enter the ledger only after the store accepted them.
        """
        if not items:
            raise ValueError("put_batch_at requires at least one item")
        if self.enforce_unique_keys:
            for key, __ in items:
                if key in self._written_keys:
                    raise OverwriteForbiddenError(key)
        crash_point(CP_PUT_RANGE_BEFORE_REQUEST)
        anchor = items[0][0]
        total = sum(len(data) for __, data in items)
        span = self.tracer.begin("put_range", "client", start=now,
                                 key=anchor, count=len(items), nbytes=total)
        when = now
        previous: "Optional[float]" = None
        try:
            for attempt in range(1, self.put_range_attempts + 1):
                self._admit(anchor, when, bypass_breaker)
                try:
                    done = self.store.put_range_at(items, when,
                                                   bandwidth=self.bandwidth,
                                                   node=self.node_id)
                except TransientRequestError as error:
                    failed_at = error.failed_at  # type: ignore[attr-defined]
                    self._note_failure(failed_at)
                    self._bump("put_retries")
                    self._bump("put_range_retries")
                    previous = self._next_backoff(attempt, previous)
                    when = failed_at + previous
                    self.tracer.record("backoff", "retry", failed_at, when,
                                       key=anchor, attempt=attempt)
                    continue
                self._note_success(done)
                if self.enforce_unique_keys:
                    for key, __ in items:
                        self._written_keys.add(key)
                self.metrics.counter("coalesced_put_batches").increment()
                self.metrics.counter("coalesced_put_keys").increment(
                    len(items)
                )
                self.tracer.finish(span, end=done, attempts=attempt)
                span = None
                return done
            # The range budget is spent: fall back to per-key PUTs (full
            # retry schedule each) from the time the last attempt failed.
            self.metrics.counter("put_range_fallbacks").increment()
            __, last = self._run_window_at(
                [(key, data) for key, data in items], len(items), when,
                bypass_breaker=bypass_breaker,
            )
            self.tracer.finish(span, end=last, outcome="per_key_fallback")
            span = None
            return last
        finally:
            if span is not None:
                self.tracer.finish(span, end=when, error="failed")

    def put_many_at(
        self, items: "Sequence[Tuple[str, bytes]]", now: float,
        window: "Optional[int]" = None, bypass_breaker: bool = False,
    ) -> float:
        """Timed ``put_many``: upload starting at ``now``; return the last
        completion time without advancing the clock.

        With ``coalesce_puts`` enabled, runs of adjacent fresh keys are
        packed into ranged multi-puts (capped at ``coalesce_max_run``);
        each run occupies one slot of the request window, so the live
        window bounds *requests* in flight, coalesced or not.
        """
        items = list(items)
        names = [key for key, __ in items]
        if not self.coalesce_puts or len(set(names)) != len(names):
            __, last = self._run_window_at(items, window, now,
                                           bypass_breaker=bypass_breaker)
            return last
        data_by_name = dict(items)
        width = window or self.parallel_window
        inflight: "List[float]" = []
        last_completion = now
        for run in self._coalesce_runs(names):
            start = now
            if len(inflight) >= width:
                start = max(now, heapq.heappop(inflight))
            if len(run) == 1:
                done = self.put_at(run[0], data_by_name[run[0]], start,
                                   bypass_breaker=bypass_breaker)
            else:
                done = self.put_batch_at(
                    [(name, data_by_name[name]) for name in run], start,
                    bypass_breaker=bypass_breaker,
                )
            heapq.heappush(inflight, done)
            last_completion = max(last_completion, done)
        return last_completion

    def get_many_at(
        self, keys: "Iterable[str]", now: float,
        window: "Optional[int]" = None,
    ) -> "Tuple[Dict[str, bytes], float]":
        """Timed ``get_many``: fetch starting at ``now``; return
        ``(results, last_completion)`` without advancing the clock.

        With ``coalesce_gets`` enabled, runs of adjacent keys are served
        by ranged multi-gets; each run occupies one slot of the request
        window.
        """
        keys = list(keys)
        if not self.coalesce_gets:
            return self._run_window_at([(key, None) for key in keys],
                                       window, now)
        width = window or self.parallel_window
        inflight: "List[float]" = []
        results: "Dict[str, bytes]" = {}
        last_completion = now
        for run in self._coalesce_runs(keys):
            start = now
            if len(inflight) >= width:
                start = max(now, heapq.heappop(inflight))
            if len(run) == 1:
                data, done = self.get_at(run[0], start)
                results[run[0]] = data
            else:
                fetched, done = self._get_range(run, start)
                for name in run:
                    data = fetched.get(name)
                    if data is None:
                        # Not yet visible in the ranged read: fall back to
                        # a single GET, which retries "no such key".
                        data, single_done = self.get_at(name, done)
                        done = max(done, single_done)
                    results[name] = data
            heapq.heappush(inflight, done)
            last_completion = max(last_completion, done)
        return results, last_completion

    def get_many(
        self, keys: "Iterable[str]", window: "Optional[int]" = None
    ) -> "Dict[str, bytes]":
        """Fetch many objects with up to ``window`` outstanding requests."""
        keys = list(keys)
        if self.coalesce_gets:
            results, last_completion = self.get_many_at(
                keys, self.clock.now(), window
            )
            self.clock.advance_to(last_completion)
            return results
        return self._run_window([(key, None) for key in keys], window)

    def put_many(
        self,
        items: "Iterable[Tuple[str, bytes]]",
        window: "Optional[int]" = None,
        bypass_breaker: bool = False,
    ) -> None:
        jobs = [(key, data) for key, data in items]
        if self.coalesce_puts:
            last = self.put_many_at(jobs, self.clock.now(), window=window,
                                    bypass_breaker=bypass_breaker)
            self.clock.advance_to(last)
            return
        self._run_window(jobs, window, bypass_breaker=bypass_breaker)

    def delete_many(
        self, keys: "Iterable[str]", window: "Optional[int]" = None
    ) -> None:
        """Delete many objects in parallel (GC batches)."""
        width = window or self.parallel_window
        now = self.clock.now()
        inflight: "List[float]" = []
        last_completion = now
        for key in keys:
            start = now
            if len(inflight) >= width:
                start = max(now, heapq.heappop(inflight))
            done = self.delete_at(key, start)
            heapq.heappush(inflight, done)
            last_completion = max(last_completion, done)
        self.clock.advance_to(last_completion)

    def was_written(self, key: str) -> bool:
        """Whether this client wrote ``key`` (never-write-twice ledger)."""
        return key in self._written_keys
