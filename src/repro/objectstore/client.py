"""Retrying client over a simulated object store, with windowed parallel I/O.

This is the storage subsystem's view of the bucket:

- **reads retry on "no such key"** up to a configurable number of attempts
  with exponential backoff, converting eventual consistency into
  read-after-write consistency for never-overwritten keys (Section 3);
- **writes retry on transient failures**; after the retry budget is
  exhausted the error propagates and the transaction layer rolls back;
- **never-write-twice enforcement** (optional): the client remembers every
  key it has written and refuses to write one twice — a guard for the
  engine's invariant and the knob for the update-in-place ablation;
- **windowed parallel I/O**: ``get_many``/``put_many`` keep up to ``window``
  requests outstanding, modelling the aggressive parallel prefetching the
  paper relies on to mask S3 latency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.objectstore.errors import (
    NoSuchKeyError,
    OverwriteForbiddenError,
    RetriesExhaustedError,
)
from repro.objectstore.s3sim import SimulatedObjectStore, TransientRequestError
from repro.sim.metrics import MetricsRegistry
from repro.sim.pipes import Pipe


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule (virtual seconds)."""

    max_attempts: int = 8
    initial_backoff: float = 0.010
    backoff_multiplier: float = 2.0
    max_backoff: float = 1.0

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        delay = self.initial_backoff * (self.backoff_multiplier ** (attempt - 1))
        return min(delay, self.max_backoff)


class RetryingObjectClient:
    """Engine-facing object store client (timed API, virtual clock)."""

    def __init__(
        self,
        store: SimulatedObjectStore,
        policy: RetryPolicy = RetryPolicy(),
        enforce_unique_keys: bool = True,
        parallel_window: int = 32,
        bandwidth: "Optional[Pipe]" = None,
    ) -> None:
        if policy.max_attempts < 1:
            raise ValueError("retry policy must allow at least one attempt")
        if parallel_window < 1:
            raise ValueError("parallel window must be at least 1")
        self.store = store
        self.policy = policy
        self.enforce_unique_keys = enforce_unique_keys
        self.parallel_window = parallel_window
        # The node's own NIC pipe; transfers route through it so several
        # multiplex nodes sharing one bucket each get their own bandwidth.
        self.bandwidth = bandwidth
        self.metrics = MetricsRegistry()
        self._written_keys: "set[str]" = set()

    @property
    def clock(self):
        return self.store.clock

    # ------------------------------------------------------------------ #
    # timed single-object operations (never advance the clock)
    # ------------------------------------------------------------------ #

    def put_at(self, key: str, data: bytes, now: float) -> float:
        """Upload with retry on transient failures; return completion time."""
        if self.enforce_unique_keys:
            if key in self._written_keys:
                raise OverwriteForbiddenError(key)
            self._written_keys.add(key)
        when = now
        for attempt in range(1, self.policy.max_attempts + 1):
            try:
                return self.store.put_at(key, data, when,
                                         bandwidth=self.bandwidth)
            except TransientRequestError as error:
                self.metrics.counter("put_retries").increment()
                when = error.failed_at + self.policy.backoff(attempt)  # type: ignore[attr-defined]
        raise RetriesExhaustedError(key, self.policy.max_attempts)

    def get_at(self, key: str, now: float) -> "Tuple[bytes, float]":
        """Read with retry on "no such key" and transient failures."""
        when = now
        for attempt in range(1, self.policy.max_attempts + 1):
            try:
                data, done = self.store.try_get_at(key, when,
                                                   bandwidth=self.bandwidth)
            except TransientRequestError as error:
                self.metrics.counter("get_retries").increment()
                when = error.failed_at + self.policy.backoff(attempt)  # type: ignore[attr-defined]
                continue
            if data is not None:
                return data, done
            self.metrics.counter("not_found_retries").increment()
            when = done + self.policy.backoff(attempt)
        raise RetriesExhaustedError(key, self.policy.max_attempts)

    def delete_at(self, key: str, now: float) -> float:
        return self.store.delete_at(key, now)

    def exists_at(self, key: str, now: float) -> "Tuple[bool, float]":
        return self.store.exists_at(key, now)

    # ------------------------------------------------------------------ #
    # synchronous wrappers (advance the clock)
    # ------------------------------------------------------------------ #

    def put(self, key: str, data: bytes) -> None:
        self.clock.advance_to(self.put_at(key, data, self.clock.now()))

    def get(self, key: str) -> bytes:
        data, done = self.get_at(key, self.clock.now())
        self.clock.advance_to(done)
        return data

    def delete(self, key: str) -> None:
        self.clock.advance_to(self.delete_at(key, self.clock.now()))

    def exists(self, key: str) -> bool:
        visible, done = self.exists_at(key, self.clock.now())
        self.clock.advance_to(done)
        return visible

    # ------------------------------------------------------------------ #
    # windowed parallel batches (advance the clock to the last completion)
    # ------------------------------------------------------------------ #

    def _run_window(
        self,
        jobs: "Sequence[Tuple[str, Optional[bytes]]]",
        window: "Optional[int]",
    ) -> "Dict[str, bytes]":
        """Run get (data=None) / put jobs with bounded outstanding requests."""
        width = window or self.parallel_window
        now = self.clock.now()
        inflight: "List[float]" = []  # min-heap of completion times
        results: "Dict[str, bytes]" = {}
        last_completion = now
        for key, payload in jobs:
            start = now
            if len(inflight) >= width:
                start = max(now, heapq.heappop(inflight))
            if payload is None:
                data, done = self.get_at(key, start)
                results[key] = data
            else:
                done = self.put_at(key, payload, start)
            heapq.heappush(inflight, done)
            last_completion = max(last_completion, done)
        self.clock.advance_to(last_completion)
        return results

    def get_many(
        self, keys: "Iterable[str]", window: "Optional[int]" = None
    ) -> "Dict[str, bytes]":
        """Fetch many objects with up to ``window`` outstanding requests."""
        return self._run_window([(key, None) for key in keys], window)

    def put_many(
        self,
        items: "Iterable[Tuple[str, bytes]]",
        window: "Optional[int]" = None,
    ) -> None:
        self._run_window([(key, data) for key, data in items], window)

    def delete_many(
        self, keys: "Iterable[str]", window: "Optional[int]" = None
    ) -> None:
        """Delete many objects in parallel (GC batches)."""
        width = window or self.parallel_window
        now = self.clock.now()
        inflight: "List[float]" = []
        last_completion = now
        for key in keys:
            start = now
            if len(inflight) >= width:
                start = max(now, heapq.heappop(inflight))
            done = self.delete_at(key, start)
            heapq.heappush(inflight, done)
            last_completion = max(last_completion, done)
        self.clock.advance_to(last_completion)

    def was_written(self, key: str) -> bool:
        """Whether this client wrote ``key`` (never-write-twice ledger)."""
        return key in self._written_keys
