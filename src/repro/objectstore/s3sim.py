"""Deterministic S3/Azure-Blob simulator with timing, throttling and cost.

The simulator layers the behaviours the paper's design responds to on top of
an in-memory version history:

- every write/read is charged per-request latency plus transfer time through
  a (possibly shared) bandwidth :class:`~repro.sim.pipes.Pipe` — typically
  the instance NIC, so S3 traffic competes with other network traffic;
- request rates are throttled *per key prefix* with token buckets, mirroring
  AWS's documented per-prefix request limits;
- writes (and deletes) become visible after a lag drawn from a
  :class:`~repro.objectstore.consistency.ConsistencyModel`, so reads may
  observe "no such key" (scenario 3 of Section 3) or stale data
  (scenario 2, only when a key is overwritten);
- PUT/GET/DELETE counts are recorded against a
  :class:`~repro.costs.meter.CostMeter`;
- every accepted PUT records the CRC-32C of the *intended* payload (the
  store's ETag) keyed by version op-time; scheduled corruption events
  (:class:`~repro.objectstore.faults.BitRot` and friends) damage the
  stored or served bytes *without* touching that record, so verified
  readers (``try_get_verified_at``), the background scrubber and
  ``repro fsck --deep`` can detect — and under replication repair — the
  damage.

Two APIs are exposed: the *timed* API (``put_at``/``try_get_at``/...)
returns virtual completion times and never touches the clock — the engine's
I/O scheduler uses it to model parallel requests — and the plain
:class:`~repro.objectstore.base.ObjectStore` API which advances the shared
clock to each operation's completion (convenient in tests and examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.costs.meter import CostMeter
from repro.objectstore.base import ObjectStore
from repro.objectstore.consistency import (
    ConsistencyModel,
    EVENTUAL,
    VersionedObject,
)
from repro.objectstore.errors import NoSuchKeyError
from repro.objectstore.faults import FaultDecision, FaultSchedule, NO_FAULT
from repro.sim.clock import VirtualClock
from repro.sim.metrics import MetricsRegistry
from repro.sim.pipes import Pipe, TokenBucket
from repro.sim.rng import DeterministicRng
from repro.sim.tracing import NULL_TRACER
from repro.checksum import crc32c


@dataclass(frozen=True)
class ObjectStoreProfile:
    """Performance/pricing profile of one object store service."""

    name: str
    put_latency: float = 0.030
    get_latency: float = 0.015
    delete_latency: float = 0.010
    latency_jitter: float = 0.10
    per_prefix_put_rate: float = 3500.0
    per_prefix_get_rate: float = 5500.0
    consistency: ConsistencyModel = EVENTUAL
    transient_failure_probability: float = 0.001
    volume: str = "s3"  # pricing key in the PriceTable
    # Aggregate service bandwidth when no shared pipe (e.g. a NIC) is given.
    default_bandwidth: float = 100e9


S3_PROFILE = ObjectStoreProfile(name="s3")

# Azure Blob Storage: the paper's other supported provider.  Broadly
# similar trade-offs to S3; slightly different latencies and pricing.
AZURE_BLOB_PROFILE = ObjectStoreProfile(
    name="azure-blob",
    put_latency=0.035,
    get_latency=0.018,
    delete_latency=0.012,
    per_prefix_put_rate=2000.0,
    per_prefix_get_rate=4000.0,
    volume="azure-blob",
)


class TransientRequestError(Exception):
    """A retryable request failure (HTTP 500/503-style).

    ``kind`` distinguishes the failure source: ``"transient"`` for the
    profile's uniform background rate, ``"outage"``/``"storm"`` for
    scheduled fault events.
    """

    def __init__(self, key: str, kind: str = "transient") -> None:
        super().__init__(f"{kind} failure on key {key!r}")
        self.key = key
        self.kind = kind


class SimulatedObjectStore(ObjectStore):
    """One simulated bucket."""

    def __init__(
        self,
        profile: ObjectStoreProfile = S3_PROFILE,
        clock: Optional[VirtualClock] = None,
        rng: Optional[DeterministicRng] = None,
        bandwidth: Optional[Pipe] = None,
        meter: Optional[CostMeter] = None,
        fault_schedule: "Optional[FaultSchedule]" = None,
        region: "Optional[str]" = None,
    ) -> None:
        self.profile = profile
        self.clock = clock or VirtualClock()
        self.fault_schedule = fault_schedule
        self.region = region
        self._rng = rng or DeterministicRng(0, f"objectstore/{profile.name}")
        self._lag_rng = self._rng.substream("visibility")
        self._jitter_rng = self._rng.substream("jitter")
        self._failure_rng = self._rng.substream("failures")
        # Separate streams for scheduled storms and for delete/HEAD
        # failures: attaching a schedule (or the delete/HEAD failure paths)
        # must not perturb the put/get draws of an existing run.
        self._storm_rng = self._rng.substream("fault-storms")
        self._aux_failure_rng = self._rng.substream("aux-failures")
        # Drawn only while a corruption event matches, so attaching (or
        # ignoring) corruption never perturbs other streams.
        self._corruption_rng = self._rng.substream("corruption")
        self._bandwidth = bandwidth or Pipe(
            profile.default_bandwidth, name=f"{profile.name}/bw"
        )
        self.meter = meter
        self.metrics = MetricsRegistry()
        self.tracer = NULL_TRACER
        self._objects: Dict[str, VersionedObject] = {}
        # key -> {version op_time -> CRC-32C of the *intended* payload},
        # recorded at PUT admission before any at-rest damage is applied.
        self._checksums: "Dict[str, Dict[float, int]]" = {}
        # Expected checksum(s) of the last GET's served version(s);
        # read back by the *_verified_at wrappers.
        self._served_checksum: "Optional[int]" = None
        self._served_checksums: "Dict[str, Optional[int]]" = {}
        self._prefix_put_buckets: Dict[str, TokenBucket] = {}
        self._prefix_get_buckets: Dict[str, TokenBucket] = {}

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _prefix(key: str) -> str:
        return key.split("/", 1)[0]

    def _put_bucket(self, prefix: str) -> TokenBucket:
        if prefix not in self._prefix_put_buckets:
            rate = self.profile.per_prefix_put_rate
            self._prefix_put_buckets[prefix] = TokenBucket(
                rate, rate, name=f"put/{prefix}"
            )
        return self._prefix_put_buckets[prefix]

    def _get_bucket(self, prefix: str) -> TokenBucket:
        if prefix not in self._prefix_get_buckets:
            rate = self.profile.per_prefix_get_rate
            self._prefix_get_buckets[prefix] = TokenBucket(
                rate, rate, name=f"get/{prefix}"
            )
        return self._prefix_get_buckets[prefix]

    def _jittered(self, latency: float) -> float:
        if self.profile.latency_jitter <= 0:
            return latency
        return latency * self._jitter_rng.lognormal(0.0, self.profile.latency_jitter)

    def _transient_failure(self) -> bool:
        p = self.profile.transient_failure_probability
        return p > 0 and self._failure_rng.random() < p

    def _aux_transient_failure(self) -> bool:
        """Background failure draw for delete/HEAD (own substream)."""
        p = self.profile.transient_failure_probability
        return p > 0 and self._aux_failure_rng.random() < p

    def _consult_schedule(self, op: str, key: str, now: float,
                          node: "Optional[str]") -> FaultDecision:
        if self.fault_schedule is None:
            return NO_FAULT
        decision = self.fault_schedule.decide(op, key, node, now, self.region)
        if decision.throttle_factor != 1.0:
            self.metrics.counter("fault_throttled_requests").increment()
        if decision.latency_multiplier != 1.0:
            self.metrics.counter("fault_latency_spikes").increment()
        return decision

    def _scheduled_failure(self, decision: FaultDecision) -> "Optional[str]":
        """Whether the schedule fails this request; returns the fault kind."""
        if decision.outage:
            self.metrics.counter("fault_outage_failures").increment()
            return "outage"
        if (
            decision.error_probability > 0
            and self._storm_rng.random() < decision.error_probability
        ):
            self.metrics.counter("fault_storm_failures").increment()
            return "storm"
        return None

    # --- checksum bookkeeping and scheduled corruption ----------------- #

    def record_checksum(self, key: str, op_time: float, value: int) -> None:
        """Record a version's clean checksum (replication applies use this
        to preserve the primary's checksum verbatim)."""
        self._checksums.setdefault(key, {})[op_time] = value

    def _record_payload_checksum(self, key: str, op_time: float,
                                 payload: bytes) -> None:
        self._checksums.setdefault(key, {})[op_time] = crc32c(payload)

    def _checksum_for(self, key: str, op_time: float,
                      data: "Optional[bytes]") -> "Optional[int]":
        """The expected checksum of one version.

        Falls back to hashing the stored bytes for versions predating
        checksum recording — at-rest damage is only ever applied *after*
        the clean checksum was recorded, so the fallback never launders
        corruption into a matching checksum.
        """
        if data is None:
            return None
        table = self._checksums.get(key)
        if table is not None and op_time in table:
            return table[op_time]
        return crc32c(data)

    @staticmethod
    def _visible_version(versioned: VersionedObject, now: float,
                         ) -> "Optional[Tuple[float, float, Optional[bytes]]]":
        """The version a reader observes at ``now`` (LWW among visible)."""
        best: "Optional[Tuple[float, float, Optional[bytes]]]" = None
        for version in versioned._versions:
            if version[1] <= now and (best is None or version[0] > best[0]):
                best = version
        return best

    @staticmethod
    def _latest_version_index(versioned: "Optional[VersionedObject]",
                              ) -> "Optional[int]":
        if versioned is None or not versioned._versions:
            return None
        return max(range(len(versioned._versions)),
                   key=lambda i: versioned._versions[i][0])

    def _flip_bits(self, data: bytes, flips: int) -> bytes:
        if not data:
            return data
        damaged = bytearray(data)
        nbits = len(damaged) * 8
        for __ in range(flips):
            pos = self._corruption_rng.randint(0, nbits - 1)
            damaged[pos // 8] ^= 1 << (pos % 8)
        return bytes(damaged)

    def _corrupt_stored(self, payload: bytes, fault: FaultDecision) -> bytes:
        """At-rest damage for a PUT matched by a corruption window.

        The clean checksum was already recorded, so the damage is silent
        but detectable; it persists until read-repair or a scrubber pass.
        """
        rng = self._corruption_rng
        damaged = payload
        if (
            fault.truncate_probability > 0.0 and len(payload) > 1
            and rng.random() < fault.truncate_probability
        ):
            damaged = payload[: rng.randint(0, len(payload) - 1)]
            self.metrics.counter("fault_truncated_puts").increment()
        if (
            fault.bitrot_probability > 0.0
            and rng.random() < fault.bitrot_probability
        ):
            damaged = self._flip_bits(damaged, fault.bitrot_flips)
            self.metrics.counter("fault_bitrot_puts").increment()
        if damaged is not payload:
            self.metrics.counter("fault_corrupted_puts").increment()
        return damaged

    def _corrupt_served(self, versioned: VersionedObject, op_time: float,
                        data: bytes, fault: FaultDecision) -> bytes:
        """Transient read-side damage: the at-rest bytes stay intact, so
        a (verified) retry of the same GET can come back clean."""
        rng = self._corruption_rng
        if (
            fault.stale_probability > 0.0
            and rng.random() < fault.stale_probability
        ):
            stale = self._stale_predecessor(versioned, op_time)
            if stale is not None:
                self.metrics.counter("fault_stale_reads_served").increment()
                return stale
        if (
            fault.truncate_probability > 0.0 and len(data) > 1
            and rng.random() < fault.truncate_probability
        ):
            self.metrics.counter("fault_truncated_reads").increment()
            return data[: rng.randint(0, len(data) - 1)]
        if (
            fault.bitrot_probability > 0.0
            and rng.random() < fault.bitrot_probability
        ):
            self.metrics.counter("fault_bitrot_reads").increment()
            return self._flip_bits(data, fault.bitrot_flips)
        return data

    @staticmethod
    def _stale_predecessor(versioned: VersionedObject,
                           op_time: float) -> "Optional[bytes]":
        """The newest non-tombstone version strictly older than ``op_time``."""
        best: "Optional[Tuple[float, float, Optional[bytes]]]" = None
        for version in versioned._versions:
            if version[0] < op_time and version[2] is not None:
                if best is None or version[0] > best[0]:
                    best = version
        return best[2] if best is not None else None

    def _record_requests(self, puts: int = 0, gets: int = 0, deletes: int = 0) -> None:
        if self.meter is not None:
            self.meter.record_requests(
                self.profile.volume, puts=puts, gets=gets, deletes=deletes
            )

    def _trace_request(self, op: str, key: str, start: float, end: float,
                       nbytes: int = 0, fault: "Optional[str]" = None,
                       puts: int = 0, gets: int = 0,
                       deletes: int = 0) -> None:
        """One leaf span per request, with its USD cost attached.

        The span starts at request issue time — throttle and bandwidth
        queueing show up as store time, which is what per-prefix-limit
        analyses need to see.  Failed attempts are recorded too (they are
        billed and take time), tagged with the fault kind.
        """
        if not self.tracer.enabled:
            return
        attrs: "Dict[str, object]" = {"key": key}
        if nbytes:
            attrs["nbytes"] = nbytes
        if fault is not None:
            attrs["fault"] = fault
        if self.meter is not None:
            attrs["cost_usd"] = self.meter.prices.request_price(
                self.profile.volume
            ).cost(puts=puts, gets=gets, deletes=deletes)
        self.tracer.record(op, "store", start, end, **attrs)

    # ------------------------------------------------------------------ #
    # timed API (never advances the clock)
    # ------------------------------------------------------------------ #

    def put_at(self, key: str, data: bytes, now: float,
               bandwidth: "Optional[Pipe]" = None,
               node: "Optional[str]" = None) -> float:
        """Upload ``data``; return virtual completion time.

        ``bandwidth`` lets a caller route the transfer through its own NIC
        pipe (multiplex nodes each have one); the store's default pipe is
        used otherwise.  ``node`` tags the request for node-scoped fault
        events.  Raises :class:`TransientRequestError` on a (simulated)
        retryable failure; the failed attempt is still billed and still
        takes time — the error carries the completion time in its
        ``failed_at`` attribute.
        """
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"object data must be bytes, got {type(data)!r}")
        fault = self._consult_schedule("put", key, now, node)
        start = self._put_bucket(self._prefix(key)).request(
            now, 1.0 / fault.throttle_factor
        )
        __, uploaded = (bandwidth or self._bandwidth).request(start, float(len(data)))
        completion = uploaded + (
            self._jittered(self.profile.put_latency) * fault.latency_multiplier
        )
        self.metrics.counter("put_requests").increment()
        self.metrics.counter("put_bytes").increment(len(data))
        # Recorded at transfer completion: the bandwidth curve then shows
        # what the pipe actually sustained (Figure 8).
        self.metrics.series("net_bytes").record(uploaded, len(data))
        self._record_requests(puts=1)
        kind = self._scheduled_failure(fault)
        if kind is None and self._transient_failure():
            kind = "transient"
        self._trace_request("put", key, now, completion,
                            nbytes=len(data), fault=kind, puts=1)
        if kind is not None:
            error = TransientRequestError(key, kind=kind)
            error.failed_at = completion  # type: ignore[attr-defined]
            raise error
        lag = self.profile.consistency.sample_lag(self._lag_rng)
        if lag > 0:
            self.metrics.counter("delayed_visibility_puts").increment()
        versioned = self._objects.setdefault(key, VersionedObject())
        if versioned.latest_data() is not None:
            self.metrics.counter("overwrites").increment()
        payload = bytes(data)
        # The checksum of the *intended* payload is recorded at admission
        # — before any scheduled corruption damages the stored bytes —
        # exactly like a real store's ETag.
        self._record_payload_checksum(key, completion, payload)
        if fault.corrupting:
            payload = self._corrupt_stored(payload, fault)
        versioned.add_version(completion + lag, payload,
                              op_time=completion)
        return completion

    def put_range_at(self, items: "Sequence[Tuple[str, bytes]]", now: float,
                     bandwidth: "Optional[Pipe]" = None,
                     node: "Optional[str]" = None) -> float:
        """Upload a run of adjacent keys as ONE billed multipart-style PUT.

        The write-side mirror of :meth:`get_range_at`: the coalescing
        client (``coalesce_puts``) packs runs of freshly keyed pages into
        a single request — one token against the first key's per-prefix
        PUT bucket, one request latency, one billed PUT, with the fault
        schedule, failure draw and throttling applying once to the whole
        batch.  Transfer time is charged for the combined payload.  A
        failure means *nothing* landed (the request never completed), so
        the client's per-key fallback cannot double-write.  On success
        every key gets its own visibility lag draw, exactly as if it had
        been PUT alone.  Returns the completion time.
        """
        if not items:
            raise ValueError("put_range_at requires at least one item")
        anchor = items[0][0]
        total = 0
        for key, data in items:
            if not isinstance(data, (bytes, bytearray)):
                raise TypeError(
                    f"object data must be bytes, got {type(data)!r}"
                )
            total += len(data)
        fault = self._consult_schedule("put", anchor, now, node)
        start = self._put_bucket(self._prefix(anchor)).request(
            now, 1.0 / fault.throttle_factor
        )
        __, uploaded = (bandwidth or self._bandwidth).request(
            start, float(total)
        )
        completion = uploaded + (
            self._jittered(self.profile.put_latency) * fault.latency_multiplier
        )
        self.metrics.counter("put_requests").increment()
        self.metrics.counter("ranged_put_requests").increment()
        self.metrics.counter("ranged_put_keys").increment(len(items))
        self.metrics.counter("put_bytes").increment(total)
        self.metrics.series("net_bytes").record(uploaded, total)
        self._record_requests(puts=1)
        kind = self._scheduled_failure(fault)
        if kind is None and self._transient_failure():
            kind = "transient"
        self._trace_request("put_range", anchor, now, completion,
                            nbytes=total, fault=kind, puts=1)
        if kind is not None:
            error = TransientRequestError(anchor, kind=kind)
            error.failed_at = completion  # type: ignore[attr-defined]
            raise error
        for key, data in items:
            lag = self.profile.consistency.sample_lag(self._lag_rng)
            if lag > 0:
                self.metrics.counter("delayed_visibility_puts").increment()
            versioned = self._objects.setdefault(key, VersionedObject())
            if versioned.latest_data() is not None:
                self.metrics.counter("overwrites").increment()
            payload = bytes(data)
            self._record_payload_checksum(key, completion, payload)
            if fault.corrupting:
                payload = self._corrupt_stored(payload, fault)
            versioned.add_version(completion + lag, payload,
                                  op_time=completion)
        return completion

    def try_get_at(self, key: str, now: float,
                   bandwidth: "Optional[Pipe]" = None,
                   node: "Optional[str]" = None) -> "Tuple[Optional[bytes], float]":
        """Attempt a read; return ``(data_or_None, completion_time)``.

        ``None`` data means the object is not visible at service time — the
        eventually-consistent "no such key" case.  Stale reads (possible only
        for overwritten keys) return the stale bytes and bump a counter.
        """
        self._served_checksum = None
        fault = self._consult_schedule("get", key, now, node)
        start = self._get_bucket(self._prefix(key)).request(
            now, 1.0 / fault.throttle_factor
        )
        served_at = start + (
            self._jittered(self.profile.get_latency) * fault.latency_multiplier
        )
        self.metrics.counter("get_requests").increment()
        self._record_requests(gets=1)
        kind = self._scheduled_failure(fault)
        if kind is None and self._transient_failure():
            kind = "transient"
        if kind is not None:
            self._trace_request("get", key, now, served_at,
                                fault=kind, gets=1)
            error = TransientRequestError(key, kind=kind)
            error.failed_at = served_at  # type: ignore[attr-defined]
            raise error
        versioned = self._objects.get(key)
        version = (self._visible_version(versioned, served_at)
                   if versioned is not None else None)
        data = version[2] if version is not None else None
        if data is None:
            self.metrics.counter("get_misses").increment()
            self._trace_request("get", key, now, served_at,
                                fault="not_visible", gets=1)
            return None, served_at
        if versioned is not None and versioned.is_stale_read(served_at):
            self.metrics.counter("stale_reads").increment()
        # The checksum the store *advertises* is the visible version's
        # (its ETag) — corruption below changes the bytes, not the ETag,
        # which is precisely what a verified reader detects.
        self._served_checksum = self._checksum_for(key, version[0], data)
        if fault.corrupting:
            data = self._corrupt_served(versioned, version[0], data, fault)
        __, downloaded = (bandwidth or self._bandwidth).request(
            served_at, float(len(data))
        )
        self.metrics.counter("get_bytes").increment(len(data))
        self.metrics.series("net_bytes").record(downloaded, len(data))
        self._trace_request("get", key, now, downloaded,
                            nbytes=len(data), gets=1)
        return data, downloaded

    def get_range_at(self, keys: "Sequence[str]", now: float,
                     bandwidth: "Optional[Pipe]" = None,
                     node: "Optional[str]" = None,
                     ) -> "Tuple[Dict[str, Optional[bytes]], float]":
        """Serve a ranged multi-get of adjacent keys as ONE billed request.

        The coalescing client (``coalesce_gets``) batches runs of adjacent
        64-bit page keys into a single request: one token against the first
        key's per-prefix GET bucket, one request latency, one billed GET —
        the fault schedule, failure draw and throttling all apply once, to
        the whole range (a transient failure fails, and later retries, the
        entire range).  Per-key visibility still applies: keys not visible
        at service time come back as ``None`` (the client falls back to
        single GETs for those).  Transfer time is charged for the combined
        visible payload.  Returns ``({key: data_or_None}, completion)``.
        """
        if not keys:
            raise ValueError("get_range_at requires at least one key")
        anchor = keys[0]
        fault = self._consult_schedule("get", anchor, now, node)
        start = self._get_bucket(self._prefix(anchor)).request(
            now, 1.0 / fault.throttle_factor
        )
        served_at = start + (
            self._jittered(self.profile.get_latency) * fault.latency_multiplier
        )
        self.metrics.counter("get_requests").increment()
        self.metrics.counter("ranged_get_requests").increment()
        self.metrics.counter("ranged_get_keys").increment(len(keys))
        self._record_requests(gets=1)
        kind = self._scheduled_failure(fault)
        if kind is None and self._transient_failure():
            kind = "transient"
        if kind is not None:
            self._trace_request("get_range", anchor, now, served_at,
                                fault=kind, gets=1)
            error = TransientRequestError(anchor, kind=kind)
            error.failed_at = served_at  # type: ignore[attr-defined]
            raise error
        results: "Dict[str, Optional[bytes]]" = {}
        self._served_checksums = {}
        total = 0
        for key in keys:
            versioned = self._objects.get(key)
            version = (self._visible_version(versioned, served_at)
                       if versioned is not None else None)
            data = version[2] if version is not None else None
            if data is None:
                self.metrics.counter("get_misses").increment()
                results[key] = None
                self._served_checksums[key] = None
                continue
            if versioned.is_stale_read(served_at):
                self.metrics.counter("stale_reads").increment()
            self._served_checksums[key] = self._checksum_for(
                key, version[0], data
            )
            if fault.corrupting:
                data = self._corrupt_served(versioned, version[0], data, fault)
            results[key] = data
            total += len(data)
        completion = served_at
        if total:
            __, downloaded = (bandwidth or self._bandwidth).request(
                served_at, float(total)
            )
            self.metrics.counter("get_bytes").increment(total)
            self.metrics.series("net_bytes").record(downloaded, total)
            completion = downloaded
        self._trace_request("get_range", anchor, now, completion,
                            nbytes=total, gets=1)
        return results, completion

    def try_get_verified_at(self, key: str, now: float,
                            bandwidth: "Optional[Pipe]" = None,
                            node: "Optional[str]" = None,
                            ) -> "Tuple[Optional[bytes], Optional[int], float]":
        """:meth:`try_get_at` plus the served version's expected checksum.

        Returns ``(data_or_None, expected_crc_or_None, completion)``.  The
        caller compares ``crc32c(data)`` against the expected value; a
        mismatch means the bytes were damaged in flight or at rest.
        """
        data, completion = self.try_get_at(key, now,
                                           bandwidth=bandwidth, node=node)
        return data, self._served_checksum, completion

    def get_range_verified_at(self, keys: "Sequence[str]", now: float,
                              bandwidth: "Optional[Pipe]" = None,
                              node: "Optional[str]" = None,
                              ) -> "Tuple[Dict[str, Optional[bytes]], Dict[str, Optional[int]], float]":
        """:meth:`get_range_at` plus per-key expected checksums."""
        results, completion = self.get_range_at(keys, now,
                                                bandwidth=bandwidth, node=node)
        return results, dict(self._served_checksums), completion

    # ------------------------------------------------------------------ #
    # repair surface (scrubber / read-repair / deep audit)
    # ------------------------------------------------------------------ #

    def recorded_checksum(self, key: str) -> "Optional[int]":
        """Clean checksum of the latest version (``None`` if absent/tombstone)."""
        versioned = self._objects.get(key)
        idx = self._latest_version_index(versioned)
        if idx is None:
            return None
        op_time, __, data = versioned._versions[idx]
        if data is None:
            return None
        return self._checksum_for(key, op_time, data)

    def verify_at_rest(self, key: str) -> "Optional[bool]":
        """Whether the latest stored bytes match their recorded checksum.

        Free of billing, RNG and time — used by the deep auditor and the
        scrubber's damage probe (the scrubber separately charges its read
        through its bandwidth budget).  ``None`` if the key is absent or
        tombstoned.
        """
        versioned = self._objects.get(key)
        idx = self._latest_version_index(versioned)
        if idx is None:
            return None
        op_time, __, data = versioned._versions[idx]
        if data is None:
            return None
        return crc32c(data) == self._checksum_for(key, op_time, data)

    def overwrite_latest(self, key: str, data: bytes) -> bool:
        """Replace the latest version's bytes in place (read-repair).

        Preserves the version's op_time/visibility so repair is invisible
        to the consistency model, and is idempotent: re-applying the same
        clean bytes is a no-op.  Returns ``False`` for absent/tombstoned
        keys.  Billing/pacing are the caller's job.
        """
        versioned = self._objects.get(key)
        idx = self._latest_version_index(versioned)
        if idx is None:
            return False
        op_time, visible_at, stored = versioned._versions[idx]
        if stored is None:
            return False
        versioned._versions[idx] = (op_time, visible_at, bytes(data))
        return True

    def inject_damage(self, key: str, flips: int = 1) -> bool:
        """Deterministically flip bits in the latest stored version.

        Test/crash-explorer hook: uses fixed arithmetic (no RNG draw, so
        injecting damage never perturbs any random stream) and records
        the clean checksum first so the damage is *detectable*.
        """
        versioned = self._objects.get(key)
        idx = self._latest_version_index(versioned)
        if idx is None:
            return False
        op_time, visible_at, data = versioned._versions[idx]
        if not data:
            return False
        self._checksums.setdefault(key, {}).setdefault(
            op_time, crc32c(data)
        )
        damaged = bytearray(data)
        nbits = len(damaged) * 8
        for i in range(flips):
            pos = (7919 * (i + 1)) % nbits
            damaged[pos // 8] ^= 1 << (pos % 8)
        versioned._versions[idx] = (op_time, visible_at, bytes(damaged))
        return True

    def delete_at(self, key: str, now: float,
                  node: "Optional[str]" = None) -> float:
        """Delete (tombstone) the object; return completion time.

        Like writes, deletes can fail transiently (background rate or a
        scheduled fault); the error carries ``failed_at``.
        """
        fault = self._consult_schedule("delete", key, now, node)
        start = self._put_bucket(self._prefix(key)).request(
            now, 1.0 / fault.throttle_factor
        )
        completion = start + (
            self._jittered(self.profile.delete_latency) * fault.latency_multiplier
        )
        self.metrics.counter("delete_requests").increment()
        self._record_requests(deletes=1)
        kind = self._scheduled_failure(fault)
        if kind is None and self._aux_transient_failure():
            kind = "transient"
        self._trace_request("delete", key, now, completion,
                            fault=kind, deletes=1)
        if kind is not None:
            error = TransientRequestError(key, kind=kind)
            error.failed_at = completion  # type: ignore[attr-defined]
            raise error
        lag = self.profile.consistency.sample_lag(self._lag_rng)
        versioned = self._objects.get(key)
        if versioned is not None and versioned.latest_data() is not None:
            versioned.add_version(completion + lag, None,
                                  op_time=completion)
        return completion

    def exists_at(self, key: str, now: float,
                  node: "Optional[str]" = None) -> "Tuple[bool, float]":
        """HEAD-style visibility probe; billed as a GET."""
        fault = self._consult_schedule("head", key, now, node)
        start = self._get_bucket(self._prefix(key)).request(
            now, 1.0 / fault.throttle_factor
        )
        served_at = start + (
            self._jittered(self.profile.get_latency) * fault.latency_multiplier
        )
        self.metrics.counter("head_requests").increment()
        self._record_requests(gets=1)
        kind = self._scheduled_failure(fault)
        if kind is None and self._aux_transient_failure():
            kind = "transient"
        self._trace_request("head", key, now, served_at,
                            fault=kind, gets=1)
        if kind is not None:
            error = TransientRequestError(key, kind=kind)
            error.failed_at = served_at  # type: ignore[attr-defined]
            raise error
        versioned = self._objects.get(key)
        visible = versioned is not None and versioned.visible_data(served_at) is not None
        return visible, served_at

    # ------------------------------------------------------------------ #
    # plain ObjectStore API (advances the shared clock)
    # ------------------------------------------------------------------ #

    def put(self, key: str, data: bytes) -> None:
        try:
            done = self.put_at(key, data, self.clock.now())
        except TransientRequestError as error:
            self.clock.advance_to(error.failed_at)  # type: ignore[attr-defined]
            raise
        self.clock.advance_to(done)

    def get(self, key: str) -> bytes:
        try:
            data, done = self.try_get_at(key, self.clock.now())
        except TransientRequestError as error:
            self.clock.advance_to(error.failed_at)  # type: ignore[attr-defined]
            raise
        self.clock.advance_to(done)
        if data is None:
            raise NoSuchKeyError(key)
        return data

    def delete(self, key: str) -> None:
        try:
            done = self.delete_at(key, self.clock.now())
        except TransientRequestError as error:
            self.clock.advance_to(error.failed_at)  # type: ignore[attr-defined]
            raise
        self.clock.advance_to(done)

    def exists(self, key: str) -> bool:
        try:
            visible, done = self.exists_at(key, self.clock.now())
        except TransientRequestError as error:
            self.clock.advance_to(error.failed_at)  # type: ignore[attr-defined]
            raise
        self.clock.advance_to(done)
        return visible

    def list_keys(self, prefix: str = "") -> "Iterator[str]":
        now = self.clock.now()
        for key in sorted(self._objects):
            if key.startswith(prefix) and self._objects[key].visible_data(now) is not None:
                yield key

    def stored_bytes(self) -> int:
        """Bytes at rest counting the *latest* version of each key."""
        total = 0
        for versioned in self._objects.values():
            data = versioned.latest_data()
            if data is not None:
                total += len(data)
        return total

    def object_count(self) -> int:
        return sum(
            1 for v in self._objects.values() if v.latest_data() is not None
        )

    def write_horizon(self) -> float:
        """Latest settle time of any write or delete the store accepted.

        Restart GC fences on this before polling a crashed node's keys: a
        request the dead node issued before crashing can carry a later
        operation time than a recovery that runs quickly afterwards, and
        under last-writer-wins such an in-flight put would outrun the
        poll's blind delete and resurrect the orphan it just reclaimed.
        Waiting until every accepted request has settled makes the delete
        the unambiguous last writer.
        """
        horizon = 0.0
        for versioned in self._objects.values():
            for op_time, visible_at, __ in versioned._versions:
                settle = max(op_time, visible_at)
                if settle > horizon:
                    horizon = settle
        return horizon

    # Introspection used by tests/ablations.

    def latest_data(self, key: str) -> "Optional[bytes]":
        """The most recent version regardless of visibility (test hook)."""
        versioned = self._objects.get(key)
        return versioned.latest_data() if versioned is not None else None

    def all_keys(self, prefix: str = "") -> "List[str]":
        """Keys whose latest version exists, regardless of visibility.

        The auditor's enumeration primitive: unlike :meth:`list_keys` it
        must see freshly written objects that eventual consistency still
        hides, and it charges no virtual time (fsck inspects the store's
        ground truth, it does not model LIST billing).
        """
        return [
            key
            for key in sorted(self._objects)
            if key.startswith(prefix)
            and self._objects[key].latest_data() is not None
        ]

    def prefix_count(self) -> int:
        """Number of distinct key prefixes seen so far."""
        return len(set(self._prefix_put_buckets) | set(self._prefix_get_buckets))

    def throttled_requests(self) -> int:
        """Requests delayed by per-prefix throttling (for the prefix ablation)."""
        return sum(
            bucket.throttled_requests
            for bucket in list(self._prefix_put_buckets.values())
            + list(self._prefix_get_buckets.values())
        )
