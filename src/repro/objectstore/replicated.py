"""Multi-region replication over per-region simulated object stores.

The paper stores the database behind one object-store endpoint; real
deployments survive region loss by replicating across regions (the
availability posture Taurus argues for).  :class:`ReplicatedObjectStore`
fronts N per-region :class:`~repro.objectstore.s3sim.SimulatedObjectStore`
instances with the asymmetric-durability contract of managed cross-region
replication:

- **synchronous primary writes** — every write/delete goes to the primary
  region and is acknowledged on the primary's timeline, exactly as today;
- **asynchronous secondary replication** — on ack, the operation is
  captured into a durable per-region replication queue and applied to each
  secondary after a configurable lag drawn on the virtual clock.  The
  queue survives region outages and primary failover, so RPO for
  *acknowledged* writes is zero: promoting a secondary first drains its
  queue;
- **bounded staleness** — every queued entry's apply time is clamped to
  ``op_time + staleness_horizon``; a ThrottleStorm on the replication
  queue stretches lag but never past the horizon.  The single documented
  exception is a :class:`~repro.objectstore.faults.RegionOutage` on the
  *target* region: an unreachable region cannot converge, so its entries
  defer to the outage end and are reported as benign pending by the
  auditor rather than as staleness violations.

Reads and the whole timed API are served by the current primary, so the
wrapper duck-types as a plain store for the resilient client, the OCM and
the auditor.  Replication applies bypass the secondary's billing/RNG
request path on purpose: they model the provider's internal replication
fabric, not client traffic, and must not perturb the deterministic
request streams of the region they land in.  Last-writer-wins ordering is
preserved by carrying the primary *operation time* into each applied
version, which is what lets a restart-GC tombstone fence out a healed
region's in-flight orphan (DESIGN.md §12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.checksum import crc32c
from repro.objectstore.consistency import VersionedObject
from repro.objectstore.faults import (
    FaultSchedule,
    NO_FAULT,
    OutageWindow,
)
from repro.objectstore.s3sim import SimulatedObjectStore
from repro.sim.clock import VirtualClock
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.sim.metrics import MetricsRegistry
from repro.sim.pipes import Pipe
from repro.sim.rng import DeterministicRng

register_crash_point(
    "replication.promote.mid_drain",
    "Failover promotion crashed between applying a queued entry to the "
    "new primary and removing it from the replication queue",
)


@dataclass(frozen=True)
class ReplicationConfig:
    """Region topology and lag model for a :class:`ReplicatedObjectStore`.

    ``regions[0]`` is the initial primary.  ``mean_lag_seconds`` is the
    mean of the exponential replication lag applied per secondary write;
    ``region_lags`` overrides it per region (tuple of pairs, keeping the
    dataclass hashable/frozen).  ``staleness_horizon`` is the bounded-
    staleness guarantee: no queued entry may apply later than
    ``op_time + staleness_horizon`` unless the target region is in outage.
    """

    regions: Tuple[str, ...] = ("us-east-1", "us-west-2")
    mean_lag_seconds: float = 0.5
    staleness_horizon: float = 30.0
    region_lags: "Optional[Tuple[Tuple[str, float], ...]]" = None

    def __post_init__(self) -> None:
        if len(self.regions) < 2:
            raise ValueError("replication needs at least two regions")
        if len(set(self.regions)) != len(self.regions):
            raise ValueError(f"duplicate regions in {self.regions!r}")
        if self.staleness_horizon <= 0:
            raise ValueError(
                f"staleness horizon must be positive, got {self.staleness_horizon!r}"
            )
        if self.mean_lag_seconds < 0:
            raise ValueError(
                f"mean lag must be non-negative, got {self.mean_lag_seconds!r}"
            )
        for region, lag in self.region_lags or ():
            if region not in self.regions:
                raise ValueError(f"lag override for unknown region {region!r}")
            if lag < 0:
                raise ValueError(f"lag override must be non-negative, got {lag!r}")

    def lag_for(self, region: str) -> float:
        for name, lag in self.region_lags or ():
            if name == region:
                return lag
        return self.mean_lag_seconds


@dataclass
class ReplicationEntry:
    """One queued operation awaiting apply on a secondary region.

    ``data is None`` is a tombstone.  ``deferred`` marks an entry whose
    apply was pushed past the staleness horizon by an outage on the
    target region (the audited exception to bounded staleness);
    ``stretched`` marks a one-shot ThrottleStorm lag stretch so repeated
    pumps stay idempotent.
    """

    key: str
    data: "Optional[bytes]"
    op_time: float
    enqueued_at: float
    apply_at: float
    deferred: bool = False
    stretched: bool = False


class StalenessViolation(RuntimeError):
    """A queued replication entry outlived the staleness horizon."""


class ReplicatedObjectStore:
    """N per-region stores behind the primary's timed/plain store API."""

    def __init__(
        self,
        config: ReplicationConfig,
        primary: SimulatedObjectStore,
        secondaries: "Dict[str, SimulatedObjectStore]",
        rng: "Optional[DeterministicRng]" = None,
    ) -> None:
        if set(secondaries) != set(config.regions[1:]):
            raise ValueError(
                f"secondaries {sorted(secondaries)} do not match "
                f"config regions {config.regions[1:]!r}"
            )
        self.config = config
        self.primary_region = config.regions[0]
        primary.region = self.primary_region
        for region, store in secondaries.items():
            store.region = region
        self._stores: "Dict[str, SimulatedObjectStore]" = {
            self.primary_region: primary, **secondaries
        }
        # Every region keeps a queue; the current primary's is always
        # empty (its writes are synchronous).  Keyed by object key: under
        # last-writer-wins only the newest queued operation per key
        # matters, so an overwrite replaces — and a tombstone cancels —
        # any older queued put for the same key.
        self._queues: "Dict[str, Dict[str, ReplicationEntry]]" = {
            region: {} for region in config.regions
        }
        self._rng = rng or DeterministicRng(0, "replication")
        self._lag_rngs = {
            region: self._rng.substream(f"lag/{region}")
            for region in config.regions
        }
        self.replication_metrics = MetricsRegistry()
        self._shared_schedule: "Optional[FaultSchedule]" = None
        for store in self._stores.values():
            if store.fault_schedule is not None:
                self._shared_schedule = store.fault_schedule
        if self._shared_schedule is not None:
            for store in self._stores.values():
                store.fault_schedule = self._shared_schedule

    # ------------------------------------------------------------------ #
    # region topology
    # ------------------------------------------------------------------ #

    @property
    def regions(self) -> "Tuple[str, ...]":
        return self.config.regions

    @property
    def primary(self) -> SimulatedObjectStore:
        return self._stores[self.primary_region]

    def store_for(self, region: str) -> SimulatedObjectStore:
        return self._stores[region]

    def secondary_regions(self) -> "List[str]":
        return [r for r in self.config.regions if r != self.primary_region]

    # The wrapper duck-types as the primary store for the client, the
    # engine and the auditor.

    @property
    def clock(self) -> VirtualClock:
        return self.primary.clock

    @property
    def profile(self):
        return self.primary.profile

    @property
    def meter(self):
        return self.primary.meter

    @property
    def metrics(self) -> MetricsRegistry:
        """Request metrics of the store callers talk to: the primary."""
        return self.primary.metrics

    @property
    def tracer(self):
        return self.primary.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        for store in self._stores.values():
            store.tracer = tracer

    @property
    def fault_schedule(self) -> "Optional[FaultSchedule]":
        return self._shared_schedule

    def ensure_fault_schedule(self) -> FaultSchedule:
        """The shared injected schedule, creating (and sharing) it lazily."""
        if self._shared_schedule is None:
            self._shared_schedule = FaultSchedule(name="injected")
            for store in self._stores.values():
                store.fault_schedule = self._shared_schedule
        return self._shared_schedule

    # ------------------------------------------------------------------ #
    # replication pump
    # ------------------------------------------------------------------ #

    def _region_decision(self, region: str, key: str,
                         data: "Optional[bytes]", when: float):
        if self._shared_schedule is None:
            return NO_FAULT
        op = "put" if data is not None else "delete"
        return self._shared_schedule.decide(op, key, None, when, region)

    def _outage_end(self, region: str, key: str, when: float) -> float:
        """Latest end of any outage covering ``region`` at ``when``."""
        end = when
        if self._shared_schedule is None:
            return end
        for event in self._shared_schedule.events:
            if isinstance(event, OutageWindow) and event.matches(
                "put", key, None, when, region
            ):
                end = max(end, event.end)
        return end

    def _apply(self, region: str, entry: ReplicationEntry,
               apply_time: float) -> None:
        """Land one queued entry on a region, bypassing its request path.

        Models the provider's replication fabric: no billing, no token
        buckets, no RNG draws — the target region's deterministic client
        request streams stay untouched.  Carrying the primary's op_time
        preserves last-writer-wins across regions.
        """
        store = self._stores[region]
        versioned = store._objects.setdefault(entry.key, VersionedObject())
        versioned.add_version(apply_time, entry.data, op_time=entry.op_time)
        if entry.data is not None:
            # The queue captured the caller's bytes at ack, so this IS the
            # primary's checksum: applies preserve it verbatim even when
            # the primary's own at-rest copy was damaged by a put-window
            # corruption event.
            store.record_checksum(entry.key, entry.op_time,
                                  crc32c(entry.data))
        self.replication_metrics.counter("replication_applied").increment()
        # Outage-deferred applies are the documented exception to bounded
        # staleness; keeping their lag in a separate histogram lets the
        # DR drill report the bound-governed worst case honestly.
        name = ("replication_lag_deferred" if entry.deferred
                else "replication_lag")
        self.replication_metrics.histogram(name).observe(
            max(0.0, apply_time - entry.op_time)
        )

    def pump(self, now: float) -> int:
        """Apply every queued entry due by ``now``; return applied count.

        Called before every store operation and explicitly by heal-time
        reconciliation.  Deterministic and idempotent: entries apply in
        key order, outage-deferred entries move to the outage end once,
        ThrottleStorm stretches an entry's lag at most once and never past
        the staleness horizon.
        """
        applied = 0
        for region in self.config.regions:
            if region == self.primary_region:
                continue
            queue = self._queues[region]
            for key in sorted(queue):
                entry = queue[key]
                if entry.apply_at > now:
                    continue
                decision = self._region_decision(
                    region, key, entry.data, entry.apply_at
                )
                if decision.outage:
                    entry.apply_at = self._outage_end(
                        region, key, entry.apply_at
                    )
                    entry.deferred = True
                    self.replication_metrics.counter(
                        "replication_deferred_outage"
                    ).increment()
                    if entry.apply_at > now:
                        continue
                if decision.throttle_factor < 1.0 and not entry.stretched:
                    lag = entry.apply_at - entry.enqueued_at
                    entry.apply_at = min(
                        entry.enqueued_at + lag / decision.throttle_factor,
                        entry.op_time + self.config.staleness_horizon,
                    )
                    entry.stretched = True
                    self.replication_metrics.counter(
                        "replication_throttle_stretched"
                    ).increment()
                    if entry.apply_at > now:
                        continue
                self._apply(region, entry, entry.apply_at)
                del queue[key]
                applied += 1
        return applied

    def _enqueue(self, key: str, data: "Optional[bytes]",
                 op_time: float) -> None:
        for region in self.config.regions:
            if region == self.primary_region:
                continue
            mean = self.config.lag_for(region)
            lag = 0.0
            if mean > 0:
                lag = min(
                    self._lag_rngs[region].expovariate(1.0 / mean),
                    self.config.staleness_horizon,
                )
            queue = self._queues[region]
            stale = queue.get(key)
            if stale is not None and data is None and stale.data is not None:
                # Delete propagation cancels the queued put outright (the
                # delete-resurrection family of PR 2, across regions).
                self.replication_metrics.counter(
                    "replication_cancelled_puts"
                ).increment()
            queue[key] = ReplicationEntry(
                key=key,
                data=None if data is None else bytes(data),
                op_time=op_time,
                enqueued_at=op_time,
                apply_at=op_time + lag,
            )
            self.replication_metrics.counter("replication_enqueued").increment()

    # ------------------------------------------------------------------ #
    # failover / reconciliation
    # ------------------------------------------------------------------ #

    def promote(self, region: str, now: float) -> int:
        """Make ``region`` the primary, draining its queue first.

        Apply-then-remove per entry, so a crash mid-drain
        (``replication.promote.mid_drain``) re-applies at most one entry
        on retry — idempotent under last-writer-wins, since the re-applied
        version carries the same op_time.  Promoting the current primary
        is a no-op (crash-retry safe).  Returns the number of drained
        entries.
        """
        if region == self.primary_region:
            return 0
        if region not in self._stores:
            raise ValueError(f"unknown region {region!r}")
        queue = self._queues[region]
        drained = 0
        for key in sorted(queue):
            entry = queue[key]
            self._apply(region, entry, apply_time=now)
            crash_point("replication.promote.mid_drain")
            del queue[key]
            drained += 1
        self.primary_region = region
        self.replication_metrics.counter("replication_promotions").increment()
        return drained

    # ------------------------------------------------------------------ #
    # read-repair (verified-read fallback and the scrubber's fix path)
    # ------------------------------------------------------------------ #

    def _latest_state(self, region: str, key: str):
        """``(op_time, data, clean)`` of a region's latest copy, or None."""
        store = self._stores[region]
        versioned = store._objects.get(key)
        idx = store._latest_version_index(versioned)
        if idx is None:
            return None
        op_time, __, data = versioned._versions[idx]
        if data is None:
            return None
        clean = crc32c(data) == store._checksum_for(key, op_time, data)
        return op_time, data, clean

    def read_repair(self, key: str, now: float) -> int:
        """Overwrite damaged at-rest copies of ``key`` from clean ones.

        A copy is only repaired from a source holding the *same version*
        (matching op_time) — either another region's clean bytes or a
        still-queued replication entry (clean by construction, captured
        at ack).  Idempotent: rewriting clean bytes over clean bytes is a
        no-op, so a crash between repair and re-verify is safe to retry.
        Returns the number of repaired copies; unrepairable damage bumps
        ``read_repair_failed`` and is left for quarantine.
        """
        self.pump(now)
        states = {
            region: self._latest_state(region, key)
            for region in self.config.regions
        }
        repaired = 0
        for region in self.config.regions:
            state = states[region]
            if state is None or state[2]:
                continue
            op_time = state[0]
            source: "Optional[bytes]" = None
            for other in self.config.regions:
                other_state = states[other]
                if (
                    other is not region and other_state is not None
                    and other_state[2] and other_state[0] == op_time
                ):
                    source = other_state[1]
                    break
            if source is None:
                for queue_region in self.config.regions:
                    entry = self._queues[queue_region].get(key)
                    if (
                        entry is not None and entry.data is not None
                        and entry.op_time == op_time
                    ):
                        source = entry.data
                        break
            if source is None:
                self.replication_metrics.counter(
                    "read_repair_failed"
                ).increment()
                continue
            self._stores[region].overwrite_latest(key, source)
            states[region] = (op_time, source, True)
            repaired += 1
            self.replication_metrics.counter("read_repairs").increment()
            self.replication_metrics.counter(
                f"read_repairs:{region}"
            ).increment()
        return repaired

    def recorded_checksum(self, key: str) -> "Optional[int]":
        return self.primary.recorded_checksum(key)

    def verify_at_rest(self, key: str) -> "Optional[bool]":
        return self.primary.verify_at_rest(key)

    def inject_damage(self, key: str, flips: int = 1) -> bool:
        return self.primary.inject_damage(key, flips)

    def pending_for(self, region: str) -> "List[ReplicationEntry]":
        return [self._queues[region][k] for k in sorted(self._queues[region])]

    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def check_staleness(self, now: float) -> "List[ReplicationEntry]":
        """Entries violating bounded staleness at ``now`` (after a pump).

        Outage-deferred entries are exempt: an unreachable region cannot
        converge, and the auditor reports them as benign pending instead.
        """
        self.pump(now)
        violations: "List[ReplicationEntry]" = []
        for region in self.config.regions:
            for entry in self._queues[region].values():
                if entry.deferred:
                    continue
                deadline = entry.op_time + self.config.staleness_horizon
                if now > deadline and entry.apply_at > now:
                    violations.append(entry)
        return violations

    def assert_bounded_staleness(self, now: float) -> None:
        violations = self.check_staleness(now)
        if violations:
            worst = violations[0]
            raise StalenessViolation(
                f"{len(violations)} queued entries exceed the "
                f"{self.config.staleness_horizon}s staleness horizon at "
                f"t={now} (first: {worst.key!r} op_time={worst.op_time})"
            )

    # ------------------------------------------------------------------ #
    # timed store API: pump, delegate to the primary, enqueue on ack
    # ------------------------------------------------------------------ #

    def put_at(self, key: str, data: bytes, now: float,
               bandwidth: "Optional[Pipe]" = None,
               node: "Optional[str]" = None) -> float:
        self.pump(now)
        done = self.primary.put_at(key, data, now, bandwidth, node)
        self._enqueue(key, data, op_time=done)
        return done

    def put_range_at(self, items: "Sequence[Tuple[str, bytes]]", now: float,
                     bandwidth: "Optional[Pipe]" = None,
                     node: "Optional[str]" = None) -> float:
        self.pump(now)
        done = self.primary.put_range_at(items, now, bandwidth, node)
        for key, data in items:
            self._enqueue(key, data, op_time=done)
        return done

    def try_get_at(self, key: str, now: float,
                   bandwidth: "Optional[Pipe]" = None,
                   node: "Optional[str]" = None):
        self.pump(now)
        return self.primary.try_get_at(key, now, bandwidth, node)

    def get_range_at(self, keys: "Sequence[str]", now: float,
                     bandwidth: "Optional[Pipe]" = None,
                     node: "Optional[str]" = None):
        self.pump(now)
        return self.primary.get_range_at(keys, now, bandwidth, node)

    def try_get_verified_at(self, key: str, now: float,
                            bandwidth: "Optional[Pipe]" = None,
                            node: "Optional[str]" = None):
        self.pump(now)
        return self.primary.try_get_verified_at(key, now, bandwidth, node)

    def get_range_verified_at(self, keys: "Sequence[str]", now: float,
                              bandwidth: "Optional[Pipe]" = None,
                              node: "Optional[str]" = None):
        self.pump(now)
        return self.primary.get_range_verified_at(keys, now, bandwidth, node)

    def delete_at(self, key: str, now: float,
                  node: "Optional[str]" = None) -> float:
        self.pump(now)
        done = self.primary.delete_at(key, now, node)
        self._enqueue(key, None, op_time=done)
        return done

    def exists_at(self, key: str, now: float,
                  node: "Optional[str]" = None):
        self.pump(now)
        return self.primary.exists_at(key, now, node)

    # ------------------------------------------------------------------ #
    # plain store API (advances the shared clock, like the primary's)
    # ------------------------------------------------------------------ #

    def put(self, key: str, data: bytes) -> None:
        try:
            done = self.put_at(key, data, self.clock.now())
        except Exception as error:
            failed_at = getattr(error, "failed_at", None)
            if failed_at is not None:
                self.clock.advance_to(failed_at)
            raise
        self.clock.advance_to(done)

    def get(self, key: str) -> bytes:
        self.pump(self.clock.now())
        return self.primary.get(key)

    def delete(self, key: str) -> None:
        try:
            done = self.delete_at(key, self.clock.now())
        except Exception as error:
            failed_at = getattr(error, "failed_at", None)
            if failed_at is not None:
                self.clock.advance_to(failed_at)
            raise
        self.clock.advance_to(done)

    def exists(self, key: str) -> bool:
        self.pump(self.clock.now())
        return self.primary.exists(key)

    def list_keys(self, prefix: str = "") -> "Iterator[str]":
        self.pump(self.clock.now())
        return self.primary.list_keys(prefix)

    # ------------------------------------------------------------------ #
    # introspection (auditor, fencing, tests)
    # ------------------------------------------------------------------ #

    def stored_bytes(self) -> int:
        return self.primary.stored_bytes()

    def object_count(self) -> int:
        return self.primary.object_count()

    def latest_data(self, key: str) -> "Optional[bytes]":
        return self.primary.latest_data(key)

    def all_keys(self, prefix: str = "") -> "List[str]":
        return self.primary.all_keys(prefix)

    def prefix_count(self) -> int:
        return self.primary.prefix_count()

    def throttled_requests(self) -> int:
        return self.primary.throttled_requests()

    def write_horizon(self) -> float:
        """Latest settle time across every region AND the queues.

        The fence that makes restart-GC blind deletes (and failover
        promotions) unambiguous last writers must cover in-flight
        replication too: a queued entry is an accepted write that has not
        settled on its target region yet.
        """
        horizon = max(
            store.write_horizon() for store in self._stores.values()
        )
        for queue in self._queues.values():
            for entry in queue.values():
                horizon = max(horizon, entry.op_time, entry.apply_at)
        return horizon


def build_replicated_store(
    config: ReplicationConfig,
    primary: SimulatedObjectStore,
    rng: DeterministicRng,
) -> ReplicatedObjectStore:
    """Wrap an engine-built primary store with simulated secondaries.

    Secondaries share the primary's profile, clock, meter and fault
    schedule but draw from independent RNG substreams (``s3/{region}``),
    so attaching replication never perturbs the primary's deterministic
    request streams — the single-region golden regression stays
    byte-identical with replication off *and* the primary's own draws are
    unchanged with it on.  Secondaries get no bandwidth pipe of their
    own: client traffic never reaches them, and replication applies
    bypass the request path entirely.
    """
    secondaries = {
        region: SimulatedObjectStore(
            primary.profile,
            clock=primary.clock,
            rng=rng.substream(f"s3/{region}"),
            meter=None,
            fault_schedule=primary.fault_schedule,
            region=region,
        )
        for region in config.regions[1:]
    }
    return ReplicatedObjectStore(
        config, primary, secondaries, rng=rng.substream("replication")
    )
