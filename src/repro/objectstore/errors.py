"""Object store error types."""

from __future__ import annotations


class ObjectStoreError(Exception):
    """Base class for object store failures."""


class NoSuchKeyError(ObjectStoreError):
    """The requested object does not exist — or is not visible *yet*.

    Under eventual consistency this is raised both for keys that were never
    written and for keys whose write has not propagated; the caller cannot
    tell the difference, which is exactly why the paper's storage subsystem
    retries reads up to a configurable limit.
    """

    def __init__(self, key: str, message: str = "") -> None:
        super().__init__(message or f"no such key: {key!r}")
        self.key = key


class OverwriteForbiddenError(ObjectStoreError):
    """A key was written twice while never-write-twice enforcement is on."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} was already written (never-write-twice)")
        self.key = key


class RetriesExhaustedError(ObjectStoreError):
    """An operation kept failing past the configured retry budget."""

    def __init__(self, key: str, attempts: int) -> None:
        super().__init__(f"gave up on key {key!r} after {attempts} attempts")
        self.key = key
        self.attempts = attempts
