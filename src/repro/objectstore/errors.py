"""Object store error types."""

from __future__ import annotations


class ObjectStoreError(Exception):
    """Base class for object store failures."""


class NoSuchKeyError(ObjectStoreError):
    """The requested object does not exist — or is not visible *yet*.

    Under eventual consistency this is raised both for keys that were never
    written and for keys whose write has not propagated; the caller cannot
    tell the difference, which is exactly why the paper's storage subsystem
    retries reads up to a configurable limit.
    """

    def __init__(self, key: str, message: str = "") -> None:
        super().__init__(message or f"no such key: {key!r}")
        self.key = key


class OverwriteForbiddenError(ObjectStoreError):
    """A key was written twice while never-write-twice enforcement is on."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} was already written (never-write-twice)")
        self.key = key


class CorruptObjectError(ObjectStoreError):
    """A verified read kept failing its checksum and no healthy replica
    could serve the object: the damage is at rest and unrepairable from
    where the client stands (single region, or every region corrupt).

    Raised *instead of* silently returning the damaged bytes — zero
    corrupt bytes ever reach the executor.  ``expected``/``actual`` are
    the CRC-32C values of the last attempt.
    """

    def __init__(self, key: str, expected: "int | None",
                 actual: "int | None", attempts: int) -> None:
        super().__init__(
            f"checksum mismatch on key {key!r} after {attempts} verified "
            f"attempts (expected {expected!r}, got {actual!r}); "
            "no healthy replica could repair it"
        )
        self.key = key
        self.expected = expected
        self.actual = actual
        self.attempts = attempts


class RetriesExhaustedError(ObjectStoreError):
    """An operation kept failing past the configured retry budget.

    ``deadline`` is set when the per-operation deadline budget (not the
    attempt count) is what stopped the retries — callers distinguishing
    "slow store" from "dead store" read it off the exception.
    """

    def __init__(self, key: str, attempts: int,
                 deadline: "float | None" = None) -> None:
        if deadline is not None:
            message = (
                f"gave up on key {key!r} after {attempts} attempts "
                f"(deadline budget {deadline:g}s exhausted)"
            )
        else:
            message = f"gave up on key {key!r} after {attempts} attempts"
        super().__init__(message)
        self.key = key
        self.attempts = attempts
        self.deadline = deadline


class CircuitOpenError(ObjectStoreError):
    """The client's circuit breaker is open: fail fast, don't call the store.

    ``retry_at`` is the virtual time at which the breaker will admit a
    half-open probe; degraded-mode callers (the OCM) use it to decide how
    long to keep serving from cache.
    """

    def __init__(self, key: str, retry_at: float) -> None:
        super().__init__(
            f"circuit breaker open; refusing request for key {key!r} "
            f"until t={retry_at:.3f}"
        )
        self.key = key
        self.retry_at = retry_at


class DegradedCacheMissError(CircuitOpenError):
    """A degraded-mode OCM read missed the cache while the breaker is open.

    Subclasses :class:`CircuitOpenError` so existing fail-fast handling
    keeps working, but names the degraded state: the caller's page is
    neither on the local SSD nor reachable on the fenced-off store, which
    is a capacity/outage interaction worth distinguishing from an ordinary
    breaker rejection.
    """

    def __init__(self, key: str, retry_at: float) -> None:
        super().__init__(key, retry_at)
        self.args = (
            f"degraded mode: OCM cache miss for key {key!r} while the "
            f"circuit breaker is open (store unreachable until "
            f"t={retry_at:.3f}); the page is not on the local SSD cache",
        )
