"""Deterministic fault-schedule injection for the simulated object store.

The base simulator models failures with a single uniform
``transient_failure_probability``; real object stores fail in *shapes*:
multi-second regional outages, 503 storms while a partition heals, latency
spikes during reshards, and throttling clamp-downs on hot prefixes.  A
:class:`FaultSchedule` scripts those shapes as timed events on the virtual
clock:

- :class:`OutageWindow` — every matching request in ``[start, end)`` fails;
- :class:`ErrorStorm` — matching requests fail with a fixed probability
  (drawn from a dedicated :class:`~repro.sim.rng.DeterministicRng`
  substream, so runs replay bit-identically);
- :class:`LatencySpike` — matching requests take ``multiplier``× the
  profile latency;
- :class:`ThrottleStorm` — per-prefix token rates are cut to
  ``rate_factor`` of nominal (each request consumes ``1/rate_factor``
  tokens).

Events scope *globally* by default, or narrow to an operation subset
(``put``/``get``/``delete``/``head``), a key prefix, a node id (the
:class:`~repro.objectstore.client.RetryingObjectClient` of each multiplex
node tags its requests), or a *region* (each per-region store of a
:class:`~repro.objectstore.replicated.ReplicatedObjectStore` carries its
region identity) — so "the secondary lost the bucket while the
coordinator kept it" or "us-east-1 went away" is one event.
:class:`RegionOutage` is the canonical region-scoped event: every request
against the region fails while it is active, and the replication pump
defers queued applies into the region until it lifts.

Beyond availability faults, three *silent corruption* events model the
failure mode checksums exist for — requests **succeed**, but the bytes
are wrong:

- :class:`BitRot` — matching payloads get ``flips`` substream-drawn bit
  flips with probability ``probability`` (damage during a ``put`` window
  persists at rest; during a ``get`` window it is transient);
- :class:`TruncatedObject` — matching payloads are cut to a
  substream-drawn prefix (a torn read / partial object);
- :class:`StaleRead` — a ``get`` is served an *older* version's bytes
  while the store still advertises the current version's checksum.

Overlapping events compose: any active outage wins, error-storm
probabilities combine to the maximum, latency multipliers multiply,
throttle factors take the minimum (harshest clamp), and corruption
probabilities combine to the maximum per kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

OPS = ("put", "get", "delete", "head")


def _normalize_ops(ops) -> "Optional[Tuple[str, ...]]":
    """Accept None (all ops), one op name, or an iterable of op names."""
    if ops is None:
        return None
    if isinstance(ops, str):
        ops = (ops,)
    normalized = tuple(sorted(set(ops)))
    for op in normalized:
        if op not in OPS:
            raise ValueError(f"unknown object-store op {op!r} (expected one of {OPS})")
    return normalized


@dataclass(frozen=True)
class FaultEvent:
    """A timed fault scoped by operation set, key prefix, node and/or region."""

    start: float
    end: float
    ops: "Optional[Tuple[str, ...]]" = None  # None = every operation
    prefix: "Optional[str]" = None           # None = every key
    node: "Optional[str]" = None             # None = every node
    region: "Optional[str]" = None           # None = every region

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"fault window must be non-empty, got [{self.start}, {self.end})"
            )
        object.__setattr__(self, "ops", _normalize_ops(self.ops))

    def matches(self, op: str, key: "Optional[str]", node: "Optional[str]",
                now: float, region: "Optional[str]" = None) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.ops is not None and op not in self.ops:
            return False
        if self.prefix is not None and (key is None or not key.startswith(self.prefix)):
            return False
        if self.node is not None and node != self.node:
            return False
        if self.region is not None and region != self.region:
            return False
        return True


@dataclass(frozen=True)
class OutageWindow(FaultEvent):
    """A hard outage: every matching request fails while active."""


@dataclass(frozen=True)
class RegionOutage(OutageWindow):
    """A whole-region outage: every request against ``region`` fails.

    Subclassing :class:`OutageWindow` means the schedule's ``decide``
    composition treats it as a hard outage automatically.  ``region`` is
    required — a region outage without a region would be a global outage,
    which :class:`OutageWindow` already spells.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.region is None:
            raise ValueError("RegionOutage requires a region")


@dataclass(frozen=True)
class ErrorStorm(FaultEvent):
    """Matching requests fail with probability ``probability`` while active."""

    probability: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"storm probability must be in [0, 1], got {self.probability!r}"
            )


@dataclass(frozen=True)
class LatencySpike(FaultEvent):
    """Matching requests take ``multiplier``× the profile latency."""

    multiplier: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.multiplier <= 0:
            raise ValueError(
                f"latency multiplier must be positive, got {self.multiplier!r}"
            )


@dataclass(frozen=True)
class ThrottleStorm(FaultEvent):
    """Per-prefix request rates drop to ``rate_factor`` of nominal."""

    rate_factor: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.rate_factor <= 1.0:
            raise ValueError(
                f"throttle rate factor must be in (0, 1], got {self.rate_factor!r}"
            )


@dataclass(frozen=True)
class CorruptionEvent(FaultEvent):
    """Base for silent-corruption events.

    Matching requests *succeed* — no error is raised, no retry is
    triggered by the store itself — but with ``probability`` the payload
    is damaged.  Detection is entirely the checksum machinery's job,
    which is the point: a store without verified reads serves the
    damaged bytes straight to the executor.
    """

    probability: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"corruption probability must be in (0, 1], "
                f"got {self.probability!r}"
            )


@dataclass(frozen=True)
class BitRot(CorruptionEvent):
    """Flip ``flips`` deterministic substream-drawn bits of the payload."""

    flips: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.flips < 1:
            raise ValueError(f"flips must be >= 1, got {self.flips!r}")


@dataclass(frozen=True)
class TruncatedObject(CorruptionEvent):
    """Serve or store a substream-drawn strict prefix of the payload."""


@dataclass(frozen=True)
class StaleRead(CorruptionEvent):
    """Serve a previous version's bytes for the current version.

    Only meaningful on reads; the store pairs the stale bytes with the
    *visible* version's checksum, so a verified reader detects the
    mismatch while an unverified one silently consumes old data.
    """


@dataclass(frozen=True)
class FaultDecision:
    """What the schedule prescribes for one request at one virtual time."""

    outage: bool = False
    error_probability: float = 0.0
    latency_multiplier: float = 1.0
    throttle_factor: float = 1.0
    bitrot_probability: float = 0.0
    bitrot_flips: int = 0
    truncate_probability: float = 0.0
    stale_probability: float = 0.0

    @property
    def corrupting(self) -> bool:
        """Whether any silent-corruption event is active."""
        return (
            self.bitrot_probability > 0.0
            or self.truncate_probability > 0.0
            or self.stale_probability > 0.0
        )

    @property
    def faulty(self) -> bool:
        return (
            self.outage
            or self.error_probability > 0.0
            or self.latency_multiplier != 1.0
            or self.throttle_factor != 1.0
            or self.corrupting
        )


NO_FAULT = FaultDecision()


class FaultSchedule:
    """An ordered collection of fault events consulted per request.

    The schedule itself is pure bookkeeping — it never draws randomness.
    The store draws any error-storm coin flips from its own dedicated
    substream, and only while a storm is active, so attaching a schedule
    never perturbs the RNG streams of an existing run outside the storm.
    """

    def __init__(self, events: "Iterable[FaultEvent]" = (),
                 name: str = "") -> None:
        self.name = name
        self._events: "List[FaultEvent]" = []
        for event in events:
            self.add(event)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        if not isinstance(event, FaultEvent):
            raise TypeError(f"expected a FaultEvent, got {type(event)!r}")
        self._events.append(event)
        return self

    @property
    def events(self) -> "List[FaultEvent]":
        return list(self._events)

    def active_events(self, now: float) -> "List[FaultEvent]":
        return [e for e in self._events if e.start <= now < e.end]

    @property
    def horizon(self) -> float:
        """Virtual time after which the schedule injects no new fault.

        The maximum ``end`` over *every* event type, corruption events
        included.  Note the caveat corruption introduces: a
        :class:`BitRot`/:class:`TruncatedObject` window covering ``put``
        damages objects *at rest*, and that damage outlives the window —
        after the horizon no new fault fires, but previously stored
        corrupt bytes remain until repaired (see
        :attr:`leaves_residual_damage` and :mod:`repro.core.scrub`).
        """
        return max((e.end for e in self._events), default=0.0)

    @property
    def corrupting(self) -> bool:
        """Whether the schedule contains any corruption events at all.

        Callers use this to decide whether verified reads are worth
        their (small) CPU cost: a schedule of pure availability faults
        (storms, outages, latency) never mutates payload bytes.
        """
        return any(isinstance(e, CorruptionEvent) for e in self._events)

    @property
    def leaves_residual_damage(self) -> bool:
        """Whether the schedule can corrupt objects at rest.

        True when any corruption event covers ``put``: the damage it
        stores persists past :attr:`horizon` until read-repair or a
        scrubber pass heals it.  Purely read-side corruption
        (``ops="get"`` windows, :class:`StaleRead`) is transient.
        """
        return any(
            isinstance(event, (BitRot, TruncatedObject))
            and (event.ops is None or "put" in event.ops)
            for event in self._events
        )

    def decide(self, op: str, key: "Optional[str]", node: "Optional[str]",
               now: float, region: "Optional[str]" = None) -> FaultDecision:
        """Combine every matching event into one prescription."""
        outage = False
        probability = 0.0
        multiplier = 1.0
        throttle = 1.0
        bitrot = 0.0
        flips = 0
        truncate = 0.0
        stale = 0.0
        for event in self._events:
            if not event.matches(op, key, node, now, region):
                continue
            if isinstance(event, OutageWindow):
                outage = True
            elif isinstance(event, ErrorStorm):
                probability = max(probability, event.probability)
            elif isinstance(event, LatencySpike):
                multiplier *= event.multiplier
            elif isinstance(event, ThrottleStorm):
                throttle = min(throttle, event.rate_factor)
            elif isinstance(event, BitRot):
                bitrot = max(bitrot, event.probability)
                flips = max(flips, event.flips)
            elif isinstance(event, TruncatedObject):
                truncate = max(truncate, event.probability)
            elif isinstance(event, StaleRead):
                stale = max(stale, event.probability)
        if (
            not outage and probability == 0.0 and multiplier == 1.0
            and throttle == 1.0 and bitrot == 0.0 and truncate == 0.0
            and stale == 0.0
        ):
            return NO_FAULT
        return FaultDecision(outage, probability, multiplier, throttle,
                             bitrot, flips, truncate, stale)

    def __repr__(self) -> str:
        return f"FaultSchedule({self.name!r}, events={len(self._events)})"


# --------------------------------------------------------------------- #
# canonical named schedules (CLI `chaos` command, chaos benchmarks)
# --------------------------------------------------------------------- #

def canonical_storm(start: float = 5.0) -> FaultSchedule:
    """The acceptance storm: 10 s blackout, then a 30 s degraded period
    with 20% errors, quarter-rate throttling and 4× latency."""
    return FaultSchedule(
        [
            OutageWindow(start, start + 10.0),
            ErrorStorm(start + 10.0, start + 40.0, probability=0.2),
            ThrottleStorm(start + 10.0, start + 40.0, rate_factor=0.25),
            LatencySpike(start + 10.0, start + 40.0, multiplier=4.0),
        ],
        name="storm",
    )


def outage_only(start: float = 5.0, duration: float = 10.0) -> FaultSchedule:
    return FaultSchedule([OutageWindow(start, start + duration)], name="outage")


def latency_spike(start: float = 5.0, duration: float = 30.0,
                  multiplier: float = 8.0) -> FaultSchedule:
    return FaultSchedule(
        [LatencySpike(start, start + duration, multiplier=multiplier)],
        name="latency",
    )


def throttle_storm(start: float = 5.0, duration: float = 30.0,
                   rate_factor: float = 0.1) -> FaultSchedule:
    return FaultSchedule(
        [ThrottleStorm(start, start + duration, rate_factor=rate_factor)],
        name="throttle",
    )


def bitrot_schedule(start: float = 5.0, duration: float = 30.0,
                    probability: float = 0.3, flips: int = 1) -> FaultSchedule:
    """Silent bit rot over both paths: a ``get`` window serves flipped
    bytes (transient — a verified retry heals it), overlapping a ``put``
    window that stores flipped bytes at rest (persistent — only
    read-repair or the scrubber heals it)."""
    return FaultSchedule(
        [
            BitRot(start, start + duration, ops="get",
                   probability=probability, flips=flips),
            BitRot(start, start + duration, ops="put",
                   probability=probability, flips=flips),
        ],
        name="bitrot",
    )


def torn_read_schedule(start: float = 5.0, duration: float = 30.0,
                       probability: float = 0.3) -> FaultSchedule:
    """Torn reads: matching GETs return a strict prefix of the object
    (the partial-object hazard Stocator defends against)."""
    return FaultSchedule(
        [
            TruncatedObject(start, start + duration, ops="get",
                            probability=probability),
        ],
        name="torn-read",
    )


NAMED_SCHEDULES: "Dict[str, object]" = {
    "storm": canonical_storm,
    "outage": outage_only,
    "latency": latency_spike,
    "throttle": throttle_storm,
    "bitrot": bitrot_schedule,
    "torn-read": torn_read_schedule,
}


def named_schedule(name: str, start: float = 5.0) -> FaultSchedule:
    """Instantiate one of the canonical schedules by name."""
    try:
        factory = NAMED_SCHEDULES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault schedule {name!r} "
            f"(available: {', '.join(sorted(NAMED_SCHEDULES))})"
        ) from None
    return factory(start=start)  # type: ignore[operator]
