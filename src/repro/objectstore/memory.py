"""A strongly consistent, zero-latency in-memory object store.

Used as the ground-truth substrate in unit tests and as the backing model
inside :class:`~repro.objectstore.s3sim.SimulatedObjectStore`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.checksum import crc32c
from repro.objectstore.base import ObjectStore
from repro.objectstore.errors import NoSuchKeyError


class InMemoryObjectStore(ObjectStore):
    """Dict-backed bucket with strong consistency and no timing."""

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}
        self._checksums: Dict[str, int] = {}
        self._bytes = 0

    def put(self, key: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"object data must be bytes, got {type(data)!r}")
        previous = self._objects.get(key)
        if previous is not None:
            self._bytes -= len(previous)
        payload = bytes(data)
        self._objects[key] = payload
        self._checksums[key] = crc32c(payload)
        self._bytes += len(data)

    def get(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise NoSuchKeyError(key) from None

    def get_verified(self, key: str) -> "Tuple[bytes, int]":
        """Return ``(data, expected_crc32c)`` for verified readers."""
        data = self.get(key)
        return data, self._checksums.get(key, crc32c(data))

    def recorded_checksum(self, key: str) -> "Optional[int]":
        return self._checksums.get(key)

    def delete(self, key: str) -> None:
        data = self._objects.pop(key, None)
        self._checksums.pop(key, None)
        if data is not None:
            self._bytes -= len(data)

    def exists(self, key: str) -> bool:
        return key in self._objects

    def list_keys(self, prefix: str = "") -> "Iterator[str]":
        for key in sorted(self._objects):
            if key.startswith(prefix):
                yield key

    def stored_bytes(self) -> int:
        return self._bytes

    def object_count(self) -> int:
        return len(self._objects)
