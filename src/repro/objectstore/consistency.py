"""Eventual consistency model for simulated object stores.

The model reproduces the three read scenarios of Section 3 of the paper:

1. the read returns the latest version,
2. the read returns a *stale* version (only possible if a key was written
   more than once — which the engine's never-write-twice policy rules out),
3. the read fails with "no such key" even though the object exists, because
   the write has not become visible yet.

Each write is assigned a *visibility time*: the virtual time after which the
new version is observable by readers.  With probability
``1 - invisible_probability`` the write is immediately visible (the common
case on real S3); otherwise visibility lags by an exponentially distributed
delay with mean ``mean_lag_seconds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class ConsistencyModel:
    """Parameters of the visibility-lag distribution."""

    invisible_probability: float = 0.0
    mean_lag_seconds: float = 0.0

    def sample_lag(self, rng: DeterministicRng) -> float:
        """Visibility lag for one write, in seconds (0 = immediately)."""
        if self.invisible_probability <= 0 or self.mean_lag_seconds <= 0:
            return 0.0
        if rng.random() >= self.invisible_probability:
            return 0.0
        return rng.expovariate(1.0 / self.mean_lag_seconds)


STRONG = ConsistencyModel()
EVENTUAL = ConsistencyModel(invisible_probability=0.05, mean_lag_seconds=0.2)


class VersionedObject:
    """All versions ever written to one key, with op and visibility times.

    A tombstone (``data is None``) records a delete; deletes propagate with
    the same lag model as writes, so a reader may still observe the object
    for a while after a delete — and may observe stale data after an
    overwrite.  Once every version has become visible, the reader observes
    the version with the latest *operation* time (last-writer-wins): a
    write whose visibility lagged past a later delete never resurrects the
    object.
    """

    __slots__ = ("_versions",)

    def __init__(self) -> None:
        # (op_time, visible_at, data) in arbitrary order.
        self._versions: List[Tuple[float, float, Optional[bytes]]] = []

    def add_version(self, visible_at: float, data: "Optional[bytes]",
                    op_time: "Optional[float]" = None) -> None:
        when = visible_at if op_time is None else op_time
        self._versions.append((when, visible_at, data))

    def visible_data(self, now: float) -> "Optional[bytes]":
        """The version a reader observes at ``now`` (None = not visible).

        Among versions that have propagated (``visible_at <= now``) the
        one with the latest operation time wins.
        """
        best: "Optional[Tuple[float, float, Optional[bytes]]]" = None
        for version in self._versions:
            if version[1] <= now and (best is None or version[0] > best[0]):
                best = version
        return best[2] if best is not None else None

    def latest_data(self) -> "Optional[bytes]":
        """The most recently *operated* version, regardless of visibility."""
        if not self._versions:
            return None
        return max(self._versions, key=lambda v: v[0])[2]

    def is_stale_read(self, now: float) -> bool:
        """Whether a read at ``now`` would observe a non-latest version."""
        visible = self.visible_data(now)
        return visible is not None and visible is not self.latest_data()

    @property
    def version_count(self) -> int:
        return len(self._versions)
